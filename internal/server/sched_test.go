package server

import (
	"errors"
	"os"
	"testing"
	"time"

	"thinc/internal/client"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/shard"
	"thinc/internal/simnet"
	"thinc/internal/telemetry"
	"thinc/internal/testutil"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

// seriesVal reads one counter/gauge value from a registry snapshot.
func seriesVal(t *testing.T, reg *telemetry.Registry, name string) int64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("series %s not registered", name)
	return 0
}

// serveEvent runs the server side of an event-session handshake
// concurrently with the client side and returns both ends.
func serveEvent(t *testing.T, host *Host, nc *simnet.EventConn, cln *simnet.EventConn, vw, vh int) (*EventSession, *client.Conn) {
	t.Helper()
	type res struct {
		es  *EventSession
		err error
	}
	resC := make(chan res, 1)
	go func() {
		es, err := host.ServeEvent(nc)
		resC <- res{es, err}
	}()
	conn, err := client.Handshake(cln, "owner", "pw", vw, vh)
	if err != nil {
		t.Fatal(err)
	}
	r := <-resC
	if r.err != nil {
		t.Fatal(r.err)
	}
	return r.es, conn
}

// TestFleetEventSession drives a fully event-driven session on a Fleet:
// the shared scheduler delivers damage with zero per-session goroutines
// on the server, inbound control flows through EventSession.Deliver, and
// the fleet-wide telemetry sees it all.
func TestFleetEventSession(t *testing.T) {
	testutil.CheckGoroutines(t)
	inputs := make(chan *wire.Input, 1)
	fleet := NewFleet(Options{
		FlushInterval:     time.Millisecond,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  20 * time.Second,
		DisableAudit:      true,
		OnInput: func(v *wire.Input) {
			select {
			case inputs <- v:
			default:
			}
		},
	}, shard.Options{Shards: 2})
	defer fleet.Close()

	host := fleet.NewHost(96, 64, testGate())
	if got := len(fleet.Hosts()); got != 1 {
		t.Fatalf("fleet has %d hosts, want 1", got)
	}
	if fleet.Scheduler() == nil {
		t.Fatal("fleet scheduler missing")
	}

	srv, cln := simnet.NewEventPair()
	es, conn := serveEvent(t, host, srv, cln, 96, 64)
	defer conn.Close()
	go conn.Run()

	host.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, 96, 64))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(30, 90, 200)}, geom.XYWH(0, 0, 96, 64))
		d.DrawText(win, &xserver.GC{Fg: pixel.RGB(255, 255, 255)}, 8, 8, "event")
	})
	want := host.ScreenChecksum()
	waitFor(t, "event client convergence", func() bool {
		return conn.Snapshot().Checksum() == want
	})

	// Inbound without a reader goroutine: a delivered Ping queues a Pong
	// echo for the pump's control drain; a delivered Input reaches the
	// display's input path just like a socket read would.
	if err := es.Deliver(&wire.Ping{Seq: 7, TimeUS: 1}); err != nil {
		t.Fatalf("Deliver(Ping): %v", err)
	}
	if err := es.Deliver(&wire.Input{X: 11, Y: 13}); err != nil {
		t.Fatalf("Deliver(Input): %v", err)
	}
	select {
	case in := <-inputs:
		if in.X != 11 || in.Y != 13 {
			t.Fatalf("delivered input = (%d,%d)", in.X, in.Y)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delivered input never reached the display")
	}
	if es.Err() != nil {
		t.Fatalf("session errored early: %v", es.Err())
	}

	if got := seriesVal(t, fleet.Telemetry(), "thinc_fleet_clients"); got != 1 {
		t.Fatalf("thinc_fleet_clients = %d, want 1", got)
	}
	if got := seriesVal(t, fleet.Telemetry(), "thinc_shard_tasks"); got != 1 {
		t.Fatalf("thinc_shard_tasks = %d, want 1", got)
	}

	// Teardown: Close is idempotent and Done/Err report it. The parked
	// session shows up in the fleet's detached gauge until host close.
	es.Close()
	select {
	case <-es.Done():
	default:
		t.Fatal("Done still open after Close returned")
	}
	if err := es.Err(); !errors.Is(err, errSessionClosed) {
		t.Fatalf("Err = %v, want errSessionClosed", err)
	}
	if err := es.Deliver(&wire.Ping{}); !errors.Is(err, errSessionClosed) {
		t.Fatalf("Deliver after close = %v", err)
	}
	waitFor(t, "detached gauge", func() bool {
		return seriesVal(t, fleet.Telemetry(), "thinc_fleet_detached_sessions") == 1
	})
}

// TestEventSessionReapedWhenSilent: with no reader goroutine the
// heartbeat pass is the liveness check — a peer that never answers any
// ping is torn down with a timeout once the silence outlasts a full
// ping round plus the configured timeout.
func TestEventSessionReapedWhenSilent(t *testing.T) {
	testutil.CheckGoroutines(t)
	fleet := NewFleet(Options{
		FlushInterval:     time.Millisecond,
		HeartbeatInterval: 5 * time.Millisecond,
		HeartbeatTimeout:  25 * time.Millisecond,
		DisableAudit:      true,
	}, shard.Options{Shards: 1})
	defer fleet.Close()

	host := fleet.NewHost(48, 32, testGate())
	srv, cln := simnet.NewEventPair()
	es, conn := serveEvent(t, host, srv, cln, 48, 32)
	defer conn.Close()
	// No Deliver calls and no client reader: the server's pings pile up
	// unanswered until the reap fires.
	select {
	case <-es.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("silent event session was never reaped")
	}
	if err := es.Err(); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("reap error = %v, want deadline exceeded", err)
	}
	var ne interface{ Timeout() bool }
	if !errors.As(es.Err(), &ne) || !ne.Timeout() {
		t.Fatalf("reap error %v is not a net-style timeout", es.Err())
	}
}

// TestServeEventRequiresScheduler: without Options.Sched the event API
// must refuse rather than half-attach.
func TestServeEventRequiresScheduler(t *testing.T) {
	testutil.CheckGoroutines(t)
	host := NewHost(32, 24, testGate(), Options{})
	t.Cleanup(host.Close)
	srv, cln := simnet.NewEventPair()
	defer cln.Close()
	if _, err := host.ServeEvent(srv); err == nil {
		t.Fatal("ServeEvent without a scheduler succeeded")
	}
}

// TestFleetSharesScheduler: two hosts on one fleet share the worker
// pool, and Close tears down hosts then scheduler without stranding
// either session.
func TestFleetSharesScheduler(t *testing.T) {
	testutil.CheckGoroutines(t)
	fleet := NewFleet(Options{
		FlushInterval:     time.Millisecond,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  20 * time.Second,
		DisableAudit:      true,
	}, shard.Options{Shards: 2})

	h1 := fleet.NewHost(32, 24, testGate())
	h2 := fleet.NewHost(64, 48, testGate())
	s1, c1 := simnet.NewEventPair()
	s2, c2 := simnet.NewEventPair()
	es1, conn1 := serveEvent(t, h1, s1, c1, 32, 24)
	es2, conn2 := serveEvent(t, h2, s2, c2, 64, 48)
	defer conn1.Close()
	defer conn2.Close()

	if got := seriesVal(t, fleet.Telemetry(), "thinc_shard_tasks"); got != 2 {
		t.Fatalf("thinc_shard_tasks = %d, want 2 (both hosts share the pool)", got)
	}
	if got := seriesVal(t, fleet.Telemetry(), "thinc_fleet_hosts"); got != 2 {
		t.Fatalf("thinc_fleet_hosts = %d, want 2", got)
	}

	fleet.Close()
	for _, es := range []*EventSession{es1, es2} {
		select {
		case <-es.Done():
		case <-time.After(5 * time.Second):
			t.Fatal("fleet close stranded an event session")
		}
	}
}
