package server

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thinc/internal/client"
	"thinc/internal/faultconn"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

// dialViewer attaches a read-only viewer using the shared-session
// password under its own user name.
func dialViewer(t *testing.T, addr, user, pass string) *client.Conn {
	t.Helper()
	conn, err := client.DialRole(addr, user, pass, 0, 0, wire.RoleViewer)
	if err != nil {
		t.Fatalf("viewer %s: %v", user, err)
	}
	t.Cleanup(func() { conn.Close() })
	go conn.Run()
	return conn
}

// TestBroadcastViewersConverge is the tentpole end to end: one owner
// and three viewers over TCP, each with its own command buffer, all
// converging byte-identical to the shared session screen.
func TestBroadcastViewersConverge(t *testing.T) {
	host, addr := startHost(t, 128, 96, Options{FlushInterval: time.Millisecond})
	host.gate.SetSessionPassword("watch")

	owner, err := client.Dial(addr, "owner", "pw", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	go owner.Run()

	viewers := []*client.Conn{
		dialViewer(t, addr, "v1", "watch"),
		dialViewer(t, addr, "v2", "watch"),
		dialViewer(t, addr, "v3", "watch"),
	}
	waitFor(t, "viewer count", func() bool { return host.NumViewers() == 3 })
	if host.NumClients() != 4 {
		t.Fatalf("NumClients = %d, want 4", host.NumClients())
	}

	host.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, 128, 96))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(10, 180, 40)}, geom.XYWH(8, 8, 80, 60))
		d.DrawText(win, &xserver.GC{Fg: pixel.RGB(255, 255, 255)}, 10, 74, "broadcast")
	})
	want := host.ScreenChecksum()
	waitFor(t, "owner convergence", func() bool { return owner.Snapshot().Checksum() == want })
	for i, v := range viewers {
		v := v
		waitFor(t, "viewer convergence", func() bool { return v.Snapshot().Checksum() == want })
		if v.Role() != wire.RoleViewer {
			t.Errorf("viewer %d granted role %d, want viewer", i, v.Role())
		}
	}

	st := host.Resilience()
	if st.ViewerAttaches != 3 {
		t.Errorf("ViewerAttaches = %d, want 3", st.ViewerAttaches)
	}
	// The fan-out amplification gauge sees 4 deliveries per translated
	// command once everyone is attached.
	if v := host.Telemetry().Value("thinc_session_viewers"); v != 3 {
		t.Errorf("thinc_session_viewers = %d, want 3", v)
	}
	if d := host.Telemetry().Value("thinc_fanout_deliveries_total"); d == 0 {
		t.Error("no fan-out deliveries recorded")
	}

	// Detach: the viewer count and gauge drop.
	viewers[0].Close()
	waitFor(t, "viewer detach", func() bool { return host.NumViewers() == 2 })
}

// TestViewerLateJoinerSyncs: a viewer attaching mid-session receives
// the full-screen sync and lands byte-identical to content drawn before
// it existed.
func TestViewerLateJoinerSyncs(t *testing.T) {
	host, addr := startHost(t, 96, 64, Options{FlushInterval: time.Millisecond})
	host.gate.SetSessionPassword("watch")

	host.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, 96, 64))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(200, 30, 30)}, geom.XYWH(0, 0, 48, 64))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(30, 30, 200)}, geom.XYWH(48, 0, 48, 64))
	})
	want := host.ScreenChecksum()

	late := dialViewer(t, addr, "late", "watch")
	waitFor(t, "late joiner sync", func() bool { return late.Snapshot().Checksum() == want })
}

// TestViewerInputDiscarded: input from a viewer-role connection never
// reaches the application; the drop is counted.
func TestViewerInputDiscarded(t *testing.T) {
	var inputs atomic.Int64
	host, addr := startHost(t, 64, 48, Options{
		FlushInterval: time.Millisecond,
		OnInput:       func(*wire.Input) { inputs.Add(1) },
	})
	host.gate.SetSessionPassword("watch")

	viewer := dialViewer(t, addr, "v1", "watch")
	if err := viewer.SendInput(&wire.Input{Kind: wire.InputMouseButton, X: 1, Y: 1, Press: true}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "input drop counted", func() bool {
		return host.Resilience().ViewerInputDropped == 1
	})
	if got := inputs.Load(); got != 0 {
		t.Fatalf("viewer input reached the application (%d events)", got)
	}
	if v := host.Telemetry().Value("thinc_session_viewer_input_dropped_total"); v != 1 {
		t.Errorf("drop metric = %d, want 1", v)
	}

	// Owner input still flows.
	owner, err := client.Dial(addr, "owner", "pw", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	go owner.Run()
	if err := owner.SendInput(&wire.Input{Kind: wire.InputMouseButton, X: 2, Y: 2, Press: true}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "owner input", func() bool { return inputs.Load() == 1 })
}

// TestMaxViewersEnforced: the MaxViewers bound refuses the overflow
// attach and counts the rejection; negative disables the bound.
func TestMaxViewersEnforced(t *testing.T) {
	host, addr := startHost(t, 64, 48, Options{FlushInterval: time.Millisecond, MaxViewers: 1})
	host.gate.SetSessionPassword("watch")

	dialViewer(t, addr, "v1", "watch")
	waitFor(t, "first viewer", func() bool { return host.NumViewers() == 1 })

	if _, err := client.DialRole(addr, "v2", "watch", 0, 0, wire.RoleViewer); err == nil {
		t.Fatal("second viewer accepted past MaxViewers=1")
	}
	if st := host.Resilience(); st.ViewersRejected != 1 {
		t.Errorf("ViewersRejected = %d, want 1", st.ViewersRejected)
	}
	// Owners are not viewers: the bound does not block the owner.
	owner, err := client.Dial(addr, "owner", "pw", 0, 0)
	if err != nil {
		t.Fatalf("owner blocked by viewer bound: %v", err)
	}
	owner.Close()

	// Negative disables the bound entirely.
	hostOff, addrOff := startHost(t, 64, 48, Options{FlushInterval: time.Millisecond, MaxViewers: -1})
	hostOff.gate.SetSessionPassword("watch")
	for i := 0; i < 3; i++ {
		dialViewer(t, addrOff, "v", "watch")
	}
	waitFor(t, "unbounded viewers", func() bool { return hostOff.NumViewers() == 3 })
}

// TestViewerRoleSurvivesReattach: a viewer whose transport dies redials
// with its ticket and resumes as a viewer — the granted role rides the
// retained session, whatever the reconnecting hello claims.
func TestViewerRoleSurvivesReattach(t *testing.T) {
	var inputs atomic.Int64
	host, addr := startHost(t, 96, 64, Options{
		FlushInterval:     time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  120 * time.Millisecond,
		DetachGrace:       5 * time.Second,
		OnInput:           func(*wire.Input) { inputs.Add(1) },
	})
	host.gate.SetSessionPassword("watch")

	// The first transport dies after 16 KiB of reads; redials are clean.
	var mu sync.Mutex
	dials := 0
	dial := func() (net.Conn, error) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		dials++
		first := dials == 1
		mu.Unlock()
		if first {
			return faultconn.Wrap(nc, faultconn.Plan{ReadFaultAfter: 16 << 10}), nil
		}
		return nc, nil
	}
	viewer, err := client.DialWithRole(dial, "v1", "watch", 0, 0, wire.RoleViewer)
	if err != nil {
		t.Fatal(err)
	}
	defer viewer.Close()
	go viewer.RunAuto(client.ReconnectPolicy{
		Initial: 20 * time.Millisecond, MaxAttempts: 10, Seed: 3,
	})

	// Paint enough distinct content to blow past the fault budget.
	for i := 0; i < 12; i++ {
		host.Do(func(d *xserver.Display) {
			win := d.CreateWindow(geom.XYWH(0, 0, 96, 64))
			pix := make([]pixel.ARGB, 24*16)
			for j := range pix {
				pix[j] = pixel.RGB(uint8(i*31+j), uint8(j), uint8(i))
			}
			d.PutImage(win, geom.XYWH((i%4)*24, (i%4)*16, 24, 16), pix, 24)
		})
		time.Sleep(2 * time.Millisecond)
	}

	waitFor(t, "viewer reattach", func() bool { return host.Resilience().Reattaches >= 1 })
	waitFor(t, "still a viewer", func() bool { return host.NumViewers() == 1 })
	if viewer.Role() != wire.RoleViewer {
		t.Fatalf("role after reattach = %d, want viewer", viewer.Role())
	}

	if err := viewer.SendInput(&wire.Input{Kind: wire.InputMouseButton, X: 1, Y: 1, Press: true}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "reattached viewer input dropped", func() bool {
		return host.Resilience().ViewerInputDropped >= 1
	})
	if inputs.Load() != 0 {
		t.Fatal("reattached viewer input reached the application")
	}
}

// TestForceRungUser pins one viewer's degradation rung without touching
// the others — the per-viewer independence knob the chaos harness uses.
func TestForceRungUser(t *testing.T) {
	host, addr := startHost(t, 64, 48, Options{FlushInterval: time.Millisecond})
	host.gate.SetSessionPassword("watch")

	v1 := dialViewer(t, addr, "v1", "watch")
	v2 := dialViewer(t, addr, "v2", "watch")
	waitFor(t, "viewers attached", func() bool { return host.NumViewers() == 2 })

	if n := host.ForceRungUser("v1", 2); n != 1 {
		t.Fatalf("ForceRungUser pinned %d connections, want 1", n)
	}
	waitFor(t, "v1 notified", func() bool { return v1.Stats().DegradeRung == 2 })
	if r := v2.Stats().DegradeRung; r != 0 {
		t.Fatalf("v2 rung moved to %d, want 0 (independent)", r)
	}
	if n := host.ForceRungUser("nobody", 1); n != 0 {
		t.Fatalf("ForceRungUser matched %d connections for unknown user", n)
	}

	// Release: v1 returns to lossless and still converges.
	host.ForceRungUser("v1", 0)
	host.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, 64, 48))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(99, 88, 77)}, geom.XYWH(0, 0, 32, 48))
	})
	want := host.ScreenChecksum()
	waitFor(t, "v1 convergence after release", func() bool { return v1.Snapshot().Checksum() == want })
	waitFor(t, "v2 convergence", func() bool { return v2.Snapshot().Checksum() == want })
}

// TestBadRoleRejected: a hello claiming an unknown role is a handshake
// error, counted as such.
func TestBadRoleRejected(t *testing.T) {
	host, addr := startHost(t, 64, 48, Options{FlushInterval: time.Millisecond})
	if _, err := client.DialRole(addr, "owner", "pw", 0, 0, 7); err == nil {
		t.Fatal("unknown role accepted")
	}
	if st := host.Resilience(); st.BadHandshakes != 1 {
		t.Errorf("BadHandshakes = %d, want 1", st.BadHandshakes)
	}
}
