package server

import (
	"encoding/binary"
	"io"
	"sync"
	"time"

	"thinc/internal/wire"
)

// Session recording. One of the uses §1 highlights for decoupled remote
// display is mirroring the output — instant technical support, session
// playback. A Recorder is simply one more THINC client whose command
// stream is written, timestamped, to an io.Writer instead of a socket;
// the translation layer's eviction and merging apply as for any client,
// so idle periods record nothing and overdrawn content is skipped.
//
// Record format, repeated:
//
//	8 bytes  microseconds since the recording started (big endian)
//	N bytes  one framed wire message
type Recorder struct {
	host  *Host
	w     io.Writer
	start time.Time

	mu     sync.Mutex
	err    error
	closed bool
	stop   chan struct{}
	done   chan struct{}
}

// Record attaches a recorder to the session. Close it to detach.
func (h *Host) Record(w io.Writer) *Recorder {
	r := &Recorder{
		host:  h,
		w:     w,
		start: time.Now(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	h.mu.Lock()
	cl := h.core.AttachClient(0, 0) // full session geometry
	h.mu.Unlock()

	go func() {
		defer close(r.done)
		t := time.NewTicker(h.opts.FlushInterval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
			}
			h.mu.Lock()
			msgs := cl.Flush(h.opts.FlushBudget)
			h.mu.Unlock()
			for _, m := range msgs {
				if err := r.write(m); err != nil {
					r.mu.Lock()
					r.err = err
					r.mu.Unlock()
					return
				}
			}
		}
	}()
	// Detach on close.
	go func() {
		<-r.done
		h.mu.Lock()
		h.core.DetachClient(cl)
		h.mu.Unlock()
	}()
	return r
}

func (r *Recorder) write(m wire.Message) error {
	var ts [8]byte
	binary.BigEndian.PutUint64(ts[:], uint64(time.Since(r.start).Microseconds()))
	if _, err := r.w.Write(ts[:]); err != nil {
		return err
	}
	return wire.WriteMessage(r.w, m)
}

// Close stops the recording and returns any write error encountered.
func (r *Recorder) Close() error {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		close(r.stop)
	}
	r.mu.Unlock()
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Record entries are read back with ReadRecord.

// Record is one timestamped message from a session recording.
type Record struct {
	AtUS uint64
	Msg  wire.Message
}

// ReadRecord decodes the next entry; io.EOF marks a clean end.
func ReadRecord(r io.Reader) (Record, error) {
	var ts [8]byte
	if _, err := io.ReadFull(r, ts[:]); err != nil {
		return Record{}, err
	}
	m, err := wire.ReadMessage(r)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Record{}, err
	}
	return Record{AtUS: binary.BigEndian.Uint64(ts[:]), Msg: m}, nil
}
