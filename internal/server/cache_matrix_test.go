package server

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"thinc/internal/auth"
	"thinc/internal/cipher"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

// The wire-v6 version matrix: the payload cache is a negotiated
// trailing extension, so a peer speaking any earlier protocol revision
// must never see a cache message — its hello simply ends before the
// CacheKB field, the server decodes the absent request as 0, and the
// update stream stays byte-compatible with the revision the peer does
// speak. Each matrix row hand-frames the hello exactly as that
// revision encoded it and then watches a repeat-heavy workload for
// stray cache traffic; the v6 control row proves the same workload
// does produce CACHE_STORE and CACHE_PAINT once negotiated, so an
// empty legacy row is evidence, not a vacuous pass.

// legacyClientInit frames a ClientInit payload as revision rev encoded
// it: v2 ends after the name, v3 through v5 append the role byte, and
// only v6 carries the CacheKB request.
func legacyClientInit(rev int, viewW, viewH int, name string) []byte {
	p := binary.BigEndian.AppendUint16(nil, uint16(viewW))
	p = binary.BigEndian.AppendUint16(p, uint16(viewH))
	p = binary.BigEndian.AppendUint16(p, uint16(len(name)))
	p = append(p, name...)
	if rev >= 3 {
		p = append(p, wire.RoleOwner)
	}
	buf := []byte{byte(wire.TClientInit)}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p)))
	return append(buf, p...)
}

// rawSessionBytes is rawSession for a hand-framed hello: it runs the
// auth handshake, then writes hello verbatim on the encrypted stream.
func rawSessionBytes(t *testing.T, addr, user, pass string, hello []byte) (net.Conn, *cipher.StreamConn) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := wire.ReadMessage(nc)
	if err != nil {
		t.Fatal(err)
	}
	ch := m.(*wire.AuthChallenge)
	if err := wire.WriteMessage(nc, &wire.AuthResponse{
		User: user, Proof: auth.Proof(pass, ch.Nonce),
	}); err != nil {
		t.Fatal(err)
	}
	if m, err = wire.ReadMessage(nc); err != nil {
		t.Fatal(err)
	}
	if res := m.(*wire.AuthResult); !res.OK {
		t.Fatalf("auth refused: %s", res.Reason)
	}
	enc, err := cipher.NewStreamConn(nc, auth.SessionKey(pass, ch.Nonce), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Write(hello); err != nil {
		t.Fatal(err)
	}
	return nc, enc
}

// drainTypes reads messages until the deadline, returning counts by
// type. Read errors after the deadline are the normal exit.
func drainTypes(nc net.Conn, enc *cipher.StreamConn, window time.Duration) map[wire.Type]int {
	counts := map[wire.Type]int{}
	deadline := time.Now().Add(window)
	for {
		_ = nc.SetReadDeadline(deadline)
		m, err := wire.ReadMessage(enc)
		if err != nil {
			return counts
		}
		counts[m.Type()]++
	}
}

// matrixWorkload draws one pattern at two non-abutting positions: a
// first appearance and a byte-identical repeat — the minimal sequence
// that must produce a CACHE_STORE then a CACHE_PAINT on a negotiated
// session and plain RAWs everywhere else.
func matrixWorkload(host *Host) {
	pix := make([]pixel.ARGB, 16*16)
	for i := range pix {
		pix[i] = pixel.RGB(uint8(i*7), uint8(i>>2), uint8(201-i))
	}
	host.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, 64, 48))
		d.PutImage(win, geom.XYWH(2, 2, 16, 16), pix, 16)
		d.PutImage(win, geom.XYWH(40, 24, 16, 16), pix, 16)
	})
}

// TestCacheVersionMatrix runs the matrix. Every pre-v6 row and the
// v6-without-request row must see zero cache messages and a ServerInit
// granting no cache; the v6 control row must see both cache message
// kinds and the clamped grant.
func TestCacheVersionMatrix(t *testing.T) {
	cases := []struct {
		name      string
		hello     func() []byte
		wantGrant uint32
		wantCache bool
	}{
		{"v2-no-role", func() []byte { return legacyClientInit(2, 64, 48, "v2") }, 0, false},
		{"v3-role", func() []byte { return legacyClientInit(3, 64, 48, "v3") }, 0, false},
		{"v4-audit", func() []byte { return legacyClientInit(4, 64, 48, "v4") }, 0, false},
		{"v5-e2e", func() []byte { return legacyClientInit(5, 64, 48, "v5") }, 0, false},
		{"v6-zero-request", func() []byte {
			b, err := wire.AppendMessage(nil, &wire.ClientInit{ViewW: 64, ViewH: 48, Name: "v6z"})
			if err != nil {
				t.Fatal(err)
			}
			return b
		}, 0, false},
		{"v6-cached", func() []byte {
			b, err := wire.AppendMessage(nil, &wire.ClientInit{ViewW: 64, ViewH: 48,
				Name: "v6c", CacheKB: 4096})
			if err != nil {
				t.Fatal(err)
			}
			return b
		}, 1024, true},
		// v7 changed no ClientInit field — a fresh attach negotiates
		// exactly as v6 did, and the new warm-verdict byte reads 0 (the
		// warm path exists only for Reattach).
		{"v7-cached", func() []byte {
			b, err := wire.AppendMessage(nil, &wire.ClientInit{ViewW: 64, ViewH: 48,
				Name: "v7c", CacheKB: 4096})
			if err != nil {
				t.Fatal(err)
			}
			return b
		}, 1024, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			opts := fastOptions()
			opts.HeartbeatTimeout = 10 * time.Second // no pongs from a hand-rolled peer
			opts.CacheKB = 1024
			host, addr := startHost(t, 64, 48, opts)

			nc, enc := rawSessionBytes(t, addr, "owner", "pw", tc.hello())
			defer nc.Close()
			_ = nc.SetReadDeadline(time.Now().Add(5 * time.Second))
			m, err := wire.ReadMessage(enc)
			if err != nil {
				t.Fatalf("no ServerInit: %v", err)
			}
			si, ok := m.(*wire.ServerInit)
			if !ok {
				t.Fatalf("expected ServerInit, got %v", m.Type())
			}
			if si.CacheKB != tc.wantGrant {
				t.Fatalf("ServerInit.CacheKB = %d, want %d", si.CacheKB, tc.wantGrant)
			}
			if si.CacheWarm != 0 {
				t.Fatalf("fresh attach claimed a warm cache: %+v", si)
			}

			matrixWorkload(host)
			counts := drainTypes(nc, enc, 400*time.Millisecond)
			stores, paints := counts[wire.TCacheStore], counts[wire.TCachePaint]
			if tc.wantCache {
				if stores < 1 || paints < 1 {
					t.Fatalf("negotiated session saw stores=%d paints=%d, want both >= 1 (types: %v)",
						stores, paints, counts)
				}
				if g := host.Resilience().CacheGrants; g != 1 {
					t.Fatalf("CacheGrants = %d, want 1", g)
				}
			} else {
				if stores != 0 || paints != 0 || counts[wire.TCacheMiss] != 0 {
					t.Fatalf("%s received cache traffic: %v", tc.name, counts)
				}
				if counts[wire.TRaw] < 1 {
					t.Fatalf("workload never arrived: %v", counts)
				}
				if g := host.Resilience().CacheGrants; g != 0 {
					t.Fatalf("CacheGrants = %d, want 0", g)
				}
			}
		})
	}
}
