package server

import (
	"math/rand"
	"sync"
	"time"
)

// Reattach-storm admission control (wire v7). A network blip detaches
// many clients at once, and their reconnects all arrive together; each
// cold reattach queues a full-screen resync, so an ungated storm
// multiplies the flush path's load by the storm width at the worst
// possible moment. The gate bounds how many cold-resync reattaches may
// be in flight concurrently — a reattach past the budget is answered
// with AttachBusy carrying a jittered retry-after and the session stays
// retained, so the storm drains in bounded waves instead of one spike.
// Warm reattaches bypass the gate entirely: their resync is a stream of
// ~21-byte cache paints, which is the economic point of keeping the
// store warm.

// resyncGate is a concurrency semaphore over in-flight cold-reattach
// resyncs. A slot is held from the admission decision until the
// client's resync backlog first drains (or the connection dies).
type resyncGate struct {
	mu       sync.Mutex
	budget   int // max concurrent holders; <= 0 means unlimited
	inflight int
	peak     int // high-watermark of inflight (tests, telemetry)
	rejected int

	retryAfter time.Duration
	rnd        *rand.Rand
}

func newResyncGate(budget int, retryAfter time.Duration, seed int64) *resyncGate {
	return &resyncGate{
		budget:     budget,
		retryAfter: retryAfter,
		rnd:        rand.New(rand.NewSource(seed)),
	}
}

// tryAcquire claims a resync slot, reporting whether the budget allowed
// it.
func (g *resyncGate) tryAcquire() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.budget > 0 && g.inflight >= g.budget {
		g.rejected++
		return false
	}
	g.inflight++
	if g.inflight > g.peak {
		g.peak = g.inflight
	}
	return true
}

// release returns a slot. Callers guarantee exactly one release per
// successful tryAcquire (the serverConn tracks the held slot).
func (g *resyncGate) release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inflight > 0 {
		g.inflight--
	}
}

// nextRetry returns the jittered delay a refused client should wait
// before redialing: uniform in [0.5x, 1.5x] of the configured base, so
// a refused wave does not re-arrive as one synchronized spike.
func (g *resyncGate) nextRetry() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	half := g.retryAfter / 2
	return half + time.Duration(g.rnd.Int63n(int64(g.retryAfter)+1))
}

// snapshot returns (inflight, peak, rejected) for telemetry and tests.
func (g *resyncGate) snapshot() (int, int, int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight, g.peak, g.rejected
}
