package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"thinc/internal/client"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/telemetry"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

// TestHostMetricsEndpoint is the acceptance check for the debug
// listener: a live Host's registry serves a Prometheus page with at
// least 25 distinct series, covering all five display command types,
// the per-queue scheduler gauges, and the heartbeat RTT histogram.
func TestHostMetricsEndpoint(t *testing.T) {
	host, addr := startHost(t, 128, 96, Options{
		FlushInterval:     time.Millisecond,
		HeartbeatInterval: 5 * time.Millisecond,
		// Fast pings default the silence timeout to 3x the interval —
		// too tight under the race detector's slowdown; a late pong
		// would reap the connection mid-test.
		HeartbeatTimeout: 2 * time.Second,
	})
	host.Tracer().SetEnabled(true)

	conn, err := client.Dial(addr, "owner", "pw", 128, 96)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()

	// Exercise the command path so the core series carry real values.
	host.Do(func(d *xserver.Display) {
		w := d.CreateWindow(geom.XYWH(0, 0, 128, 96))
		d.FillRect(w, &xserver.GC{Fg: pixel.RGB(10, 20, 30)}, geom.XYWH(5, 5, 40, 30))
		d.DrawText(w, &xserver.GC{Fg: pixel.RGB(255, 255, 255)}, 8, 8, "metrics")
	})
	waitFor(t, "display traffic", func() bool {
		return host.Telemetry().Value("thinc_wire_messages_total",
			telemetry.L("type", "raw")) > 0
	})
	waitFor(t, "heartbeat RTT", func() bool {
		n, _ := host.Telemetry().HistogramStats("thinc_heartbeat_rtt_us")
		return n > 0
	})

	if n := host.Telemetry().NumSeries(); n < 25 {
		t.Fatalf("registry has %d series, acceptance floor is 25", n)
	}

	ts := httptest.NewServer(telemetry.Handler(host.Telemetry(), host.Tracer()))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)

	for _, want := range []string{
		// All five display command types, active or not.
		`thinc_wire_messages_total{type="raw"}`,
		`thinc_wire_messages_total{type="copy"}`,
		`thinc_wire_messages_total{type="sfill"}`,
		`thinc_wire_messages_total{type="pfill"}`,
		`thinc_wire_messages_total{type="bitmap"}`,
		`thinc_wire_bytes_total{type="raw"}`,
		// Scheduler queue gauges, including the real-time queue.
		`thinc_sched_queue_depth{queue="0"}`,
		`thinc_sched_queue_depth{queue="rt"}`,
		`thinc_sched_queue_bytes{queue="9"}`,
		// Heartbeat RTT histogram with cumulative buckets.
		`thinc_heartbeat_rtt_us_bucket`,
		`thinc_heartbeat_rtt_us_count`,
		// Translation and scheduler cores.
		`thinc_translate_commands_total{dest="screen"}`,
		`thinc_sched_commands_queued_total{class="partial"}`,
		`thinc_session_attaches_total 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The attach left a trace event in the ring buffer.
	names := map[string]bool{}
	for _, e := range host.Tracer().Events() {
		names[e.Name] = true
	}
	if !names["session.attach"] {
		t.Fatalf("trace ring missing session.attach (have %v)", names)
	}
}

// TestWireByteAccounting checks the marshal-once write path: the RAW
// bytes the server counts match what the client actually applied.
func TestWireByteAccounting(t *testing.T) {
	host, addr := startHost(t, 64, 48, Options{FlushInterval: time.Millisecond})
	conn, err := client.Dial(addr, "owner", "pw", 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()

	// Partial fill: a full-screen one would (correctly) evict the
	// attach-time RAW before delivery — overwrite classes at work.
	host.Do(func(d *xserver.Display) {
		w := d.CreateWindow(geom.XYWH(0, 0, 64, 48))
		d.FillRect(w, &xserver.GC{Fg: pixel.RGB(200, 0, 0)}, geom.XYWH(4, 4, 16, 16))
	})
	waitFor(t, "raw delivered", func() bool {
		return conn.Stats().Bytes[wire.TRaw] > 0
	})
	waitFor(t, "byte totals agree", func() bool {
		got := host.Telemetry().Value("thinc_wire_bytes_total", telemetry.L("type", "raw"))
		return got >= conn.Stats().Bytes[wire.TRaw] && got > 0
	})
}
