package server

import (
	"testing"
	"time"

	"thinc/internal/client"
	"thinc/internal/geom"
	"thinc/internal/overload"
	"thinc/internal/pixel"
	"thinc/internal/telemetry"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

// TestWatchdogRecoversPanic crashes a connection goroutine from inside
// the input callback. The watchdog must convert the panic into a clean
// session teardown — the host keeps serving, the recovery is counted,
// and a fresh client still converges.
func TestWatchdogRecoversPanic(t *testing.T) {
	opts := fastOptions()
	opts.OnInput = func(ev *wire.Input) { panic("input handler exploded") }
	host, addr := startHost(t, 64, 48, opts)

	conn, err := client.Dial(addr, "owner", "pw", 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	go conn.Run()
	if err := conn.SendInput(&wire.Input{Kind: wire.InputMouseButton, X: 1, Y: 2}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "watchdog recovery", func() bool {
		return host.Resilience().WatchdogRecoveries >= 1
	})
	conn.Close()
	if got := host.Telemetry().Total("thinc_watchdog_recoveries_total"); got < 1 {
		t.Fatalf("thinc_watchdog_recoveries_total = %d, want >= 1", got)
	}

	// The host must still be fully alive for the next client.
	conn2, err := client.Dial(addr, "owner", "pw", 64, 48)
	if err != nil {
		t.Fatalf("dial after watchdog recovery: %v", err)
	}
	defer conn2.Close()
	go conn2.Run()
	host.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, 64, 48))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(20, 120, 220)}, geom.XYWH(4, 4, 40, 30))
	})
	want := host.ScreenChecksum()
	waitFor(t, "post-recovery convergence", func() bool {
		return conn2.Snapshot().Checksum() == want
	})
}

// TestOverloadLadderClimbsAndRecovers drives a connection up the whole
// degradation ladder and back. FlushBudget is held under the
// estimator's minimum sample (1024B) so the drain-rate floor governs:
// backlog over ~3.3KB reads as pressure. A blend storm then outpaces
// the 512B/ms trickle until the ladder tops out at the resync rung;
// once the storm stops the controller must recover rung by rung,
// repair the lossy rungs' damage with a refresh, and leave the client
// byte-identical at lossless.
func TestOverloadLadderClimbsAndRecovers(t *testing.T) {
	opts := fastOptions()
	opts.FlushBudget = 512
	opts.MaxBacklogBytes = -1 // the ladder, not the cliff, must act
	opts.Overload = overload.Config{
		UpSec:     0.05,
		DownSec:   0.01,
		UpTicks:   6,
		DownTicks: 5,
		HoldTicks: 16,
	}
	host, addr := startHost(t, 64, 48, opts)

	conn, err := client.Dial(addr, "owner", "pw", 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()

	// Seed content and a window for the storm.
	var win *xserver.Window
	host.Do(func(d *xserver.Display) {
		win = d.CreateWindow(geom.XYWH(0, 0, 64, 48))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(30, 30, 90)}, geom.XYWH(0, 0, 64, 48))
	})

	// Blend storm: translucent composites accumulate as Transparent
	// commands (no overwrite merging), growing the backlog far faster
	// than the flush trickle drains it.
	tile := make([]pixel.ARGB, 16*16)
	for i := range tile {
		tile[i] = pixel.PackARGB(128, uint8(i), uint8(i*3), uint8(i*7))
	}
	deadline := time.Now().Add(4 * time.Second)
	for i := 0; host.Resilience().OverloadResyncs == 0; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("ladder never reached resync: %+v", host.Resilience())
		}
		host.Do(func(d *xserver.Display) {
			d.Composite(win, geom.XYWH((i*3)%48, (i*5)%32, 16, 16), tile, 16)
			d.Composite(win, geom.XYWH((i*7)%48, (i*11)%32, 16, 16), tile, 16)
		})
		time.Sleep(200 * time.Microsecond)
	}
	st := host.Resilience()
	if st.OverloadUps < overload.NumRungs-1 {
		t.Fatalf("OverloadUps = %d after reaching resync, want >= %d", st.OverloadUps, overload.NumRungs-1)
	}

	// Storm over: the ladder must walk back down to lossless, one rung
	// at a time, repairing the lossy rungs with a full refresh.
	waitFor(t, "recovery to lossless", func() bool {
		return host.Resilience().OverloadDowns >= overload.NumRungs-1 &&
			conn.Stats().DegradeRung == 0
	})
	want := host.ScreenChecksum()
	waitFor(t, "post-recovery convergence", func() bool {
		return conn.Snapshot().Checksum() == want
	})

	cs := conn.Stats()
	if cs.DegradeNotices < 2*(overload.NumRungs-1) {
		t.Fatalf("client saw %d degrade notices, want >= %d", cs.DegradeNotices, 2*(overload.NumRungs-1))
	}
	st = host.Resilience()
	if st.OverloadResyncs < 1 {
		t.Fatalf("OverloadResyncs = %d, want >= 1", st.OverloadResyncs)
	}
	reg := host.Telemetry()
	if got := reg.Total("thinc_overload_transitions_total"); got < 2*int64(overload.NumRungs-1) {
		t.Fatalf("thinc_overload_transitions_total = %d, want >= %d", got, 2*(overload.NumRungs-1))
	}
	if got := reg.Value("thinc_client_degrade_rung", telemetry.L("client", "owner#1")); got != 0 {
		t.Fatalf("thinc_client_degrade_rung{client=owner#1} = %d, want 0 after recovery", got)
	}
	if got := reg.Total("thinc_overload_resyncs_total"); got < 1 {
		t.Fatalf("thinc_overload_resyncs_total = %d, want >= 1", got)
	}
}
