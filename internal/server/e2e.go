package server

import (
	"fmt"
	"sync/atomic"
	"time"

	"thinc/internal/core"
	"thinc/internal/overload"
	"thinc/internal/wire"
)

// End-to-end update tracing (wire v5).
//
// Server-side telemetry ends at the socket write; the user-visible
// latency ends when the client has decoded and painted the update. To
// close that gap without clock synchronization, the flush loop — the
// sole writer and the sole owner of this state machine — appends a
// TIME_MARK after a flush that delivered commands, naming the newest
// flush epoch the batch contained. The client answers with a MARK_ACK
// once everything up to the mark is on its framebuffer, carrying the
// decode+apply time it spent since the previous ack. All arithmetic
// stays on the server clock:
//
//	queue = flush drain   - oldest damage instant delivered
//	write = write done    - flush drain
//	apply = client-reported decode+apply time
//	wire  = ack received  - write done - minRTT/2 - apply
//	e2e   = queue + write + wire + apply
//
// The return leg of the ack is estimated as half the heartbeat
// min-RTT — the estimator's bufferbloat-free floor — so the wire stage
// absorbs queueing delay on the forward path, which is exactly the
// delay a user perceives. Stage sums equal the end-to-end figure by
// construction.
//
// A v4 peer skips TIME_MARK as an unknown-but-well-framed type and
// never acks: after markLegacyMissLimit marks expire unanswered with
// no ack ever seen, the peer is marked legacy on the retained core
// client (riding reattach, like the audit verdict) and the server
// stops marking its batches.

const (
	// markLegacyMissLimit: expired marks (with no ack ever) before a
	// peer is declared pre-v5 and marking stops.
	markLegacyMissLimit = 2
	// maxInflightMarks bounds the per-connection mark window; when it
	// is full no new mark is sent until an ack or a timeout frees one.
	maxInflightMarks = 64
)

// markRec is one in-flight mark: the server-clock instants of the
// pipeline stages behind it.
type markRec struct {
	epoch    uint64
	timeUS   uint64 // echoed opaquely by the ack
	damageNS int64  // oldest damage instant the flush delivered (0 = unstamped)
	drainNS  int64  // when the scheduler drain returned
	writeNS  int64  // when the batch write completed
}

// e2eConn is one connection's mark state. Owned by the flush loop; the
// durable cursor (legacy verdict, miss count) lives on the core client
// so it rides reattach.
type e2eConn struct {
	inflight   []markRec
	lastMarkNS int64
}

// e2eMark decides whether the flush that just completed should carry a
// mark and, if so, returns the record to arm after the write. Called
// with the flush trace read under the host lock and the drain instant.
func (c *serverConn) e2eMark(ft core.FlushTrace, drainNS int64) *wire.TimeMark {
	o := &c.host.opts
	if o.DisableE2E || ft.Delivered == 0 {
		return nil
	}
	ts := c.cl.Trace()
	if ts.Legacy {
		return nil
	}
	c.e2eExpire()
	if ts.Legacy { // the expiry pass may have just reached the verdict
		return nil
	}
	if len(c.e2e.inflight) >= maxInflightMarks {
		return nil // window full; wait for acks or timeouts
	}
	if c.e2e.lastMarkNS != 0 && drainNS-c.e2e.lastMarkNS < int64(o.MarkInterval) {
		return nil // pacing: at most one mark per MarkInterval
	}
	c.e2e.lastMarkNS = drainNS
	ts.Sent++
	m := &wire.TimeMark{Epoch: ft.MaxEpoch, TimeUS: uint64(time.Now().UnixMicro())}
	c.e2e.inflight = append(c.e2e.inflight, markRec{
		epoch:    m.Epoch,
		timeUS:   m.TimeUS,
		damageNS: ft.OldestDamageNS,
		drainNS:  drainNS,
	})
	met := c.host.met
	met.e2eMarks.Inc()
	c.host.mu.Lock()
	c.host.stats.E2EMarks++
	c.host.mu.Unlock()
	return m
}

// e2eArm finalizes the just-sent mark with the instant its batch write
// completed. Must follow the flush that carried the mark.
func (c *serverConn) e2eArm() {
	c.e2e.inflight[len(c.e2e.inflight)-1].writeNS = time.Now().UnixNano()
}

// e2eExpire times out stale marks and walks the legacy verdict —
// exactly the audit loop's never-answered pattern.
func (c *serverConn) e2eExpire() {
	timeout := int64(c.host.opts.MarkTimeout)
	now := time.Now().UnixNano()
	ts := c.cl.Trace()
	met := c.host.met
	expired := 0
	for _, r := range c.e2e.inflight {
		// writeNS may still be zero if the mark's flush errored mid-way;
		// fall back to the drain instant.
		sent := r.writeNS
		if sent == 0 {
			sent = r.drainNS
		}
		if now-sent < timeout {
			break // FIFO: everything later is younger
		}
		expired++
	}
	if expired == 0 {
		return
	}
	c.e2e.inflight = c.e2e.inflight[:copy(c.e2e.inflight, c.e2e.inflight[expired:])]
	ts.Misses += expired
	met.e2eTimeouts.Add(int64(expired))
	c.host.mu.Lock()
	c.host.stats.E2ETimeouts += expired
	c.host.mu.Unlock()
	if !ts.EverAcked && ts.Misses >= markLegacyMissLimit {
		// Never acked a mark: a pre-v5 peer. Stop marking it.
		ts.Legacy = true
		c.e2e.inflight = c.e2e.inflight[:0]
		met.e2eLegacyPeers.Inc()
		c.host.mu.Lock()
		c.host.stats.E2ELegacyPeers++
		c.host.mu.Unlock()
		if tr := met.tr; tr.Enabled() {
			tr.SessionEvent(c.user, "e2e.legacy", "peer never acked a mark")
		}
	}
}

// e2eAck closes the loop on one acknowledged mark: compute the stage
// decomposition and feed the histograms.
func (c *serverConn) e2eAck(ack *wire.MarkAck) {
	ackNS := time.Now().UnixNano()
	ts := c.cl.Trace()
	met := c.host.met
	// Find the acked mark; acks arrive in order over TCP, so anything
	// older in the window was skipped (its flush write failed mid-batch
	// or the ack was lost to a reconnect) and is dropped as missed.
	idx := -1
	for i, r := range c.e2e.inflight {
		if r.epoch == ack.Epoch && r.timeUS == ack.TimeUS {
			idx = i
			break
		}
	}
	if idx < 0 {
		return // stale or duplicate ack (reattach race); ignore
	}
	ts.EverAcked = true
	ts.Misses = 0
	rec := c.e2e.inflight[idx]
	c.e2e.inflight = c.e2e.inflight[:copy(c.e2e.inflight, c.e2e.inflight[idx+1:])]
	met.e2eAcks.Inc()
	c.host.mu.Lock()
	c.host.stats.E2EAcks++
	c.host.mu.Unlock()

	if rec.writeNS == 0 {
		return // mark write never completed cleanly; stages undefined
	}
	// One-way skew correction: the ack's return leg is estimated as half
	// the heartbeat min-RTT (the estimator's bufferbloat-free floor), so
	// forward-path queueing delay stays inside the wire stage where the
	// user perceives it.
	c.estMu.Lock()
	retNS := int64(c.est.MinRTTMicros()*1000) / 2
	c.estMu.Unlock()

	queueNS := int64(0)
	if rec.damageNS > 0 && rec.drainNS > rec.damageNS {
		queueNS = rec.drainNS - rec.damageNS
	}
	writeNS := max64(0, rec.writeNS-rec.drainNS)
	applyNS := int64(ack.ApplyUS) * 1000
	wireNS := max64(0, ackNS-rec.writeNS-retNS-applyNS)
	e2eNS := queueNS + writeNS + wireNS + applyNS

	met.e2eStageQueue.Observe(queueNS)
	met.e2eStageWrite.Observe(writeNS)
	met.e2eStageWire.Observe(wireNS)
	met.e2eStageApply.Observe(applyNS)
	rung := int(atomic.LoadInt32(&c.rung))
	if rung < 0 || rung >= overload.NumRungs {
		rung = 0
	}
	met.e2eLatency[rung].Observe(e2eNS / 1000)
	if tr := met.tr; tr.Enabled() {
		tr.SessionEvent(c.user, "e2e.ack",
			fmt.Sprintf("epoch=%d rung=%s e2e_us=%d queue_us=%d write_us=%d wire_us=%d apply_us=%d",
				ack.Epoch, overload.RungName(rung), e2eNS/1000, queueNS/1000,
				writeNS/1000, wireNS/1000, applyNS/1000))
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
