package server

import (
	"fmt"
	"time"

	"thinc/internal/wire"
)

// Integrity auditing and self-healing tile repair (wire v4).
//
// The server keeps per-tile digests of the session framebuffer,
// maintained incrementally by the translation layer as applications
// draw. On each audit tick the flush loop — the sole writer to the
// client and the sole owner of the audit state machine — probes one
// settled client with AUDIT_PROBE, asking it to digest a sampled
// window of its own framebuffer tiles. The AUDIT_REPLY digests are
// compared against the server's; any divergent tile (silent
// corruption past the decoder, a buggy client raster op, bitflipped
// payload bytes) is healed with a targeted RAW repaint through the
// normal scheduler — no full-screen resync.
//
// Escalation ladder: a sampled window with more than
// AuditEscalateTiles mismatches triggers a full sweep of every tile
// (probed in window-sized chunks); a sweep whose total damage exceeds
// AuditResyncTiles abandons targeted repair for a full resync. A peer
// that answers heartbeats but never answers probes is a pre-v4 client:
// after legacyMissLimit unanswered probes with no reply ever seen it
// is marked legacy and left alone. A peer that used to answer and then
// goes silent for resyncMissLimit probes can no longer be verified and
// is resynced.
//
// Probes are only sent when the client is eligible — settled at the
// lossless rung with an unscaled viewport — and when its command queue
// is fully drained. Because the flush loop is the only writer, a probe
// sent right after observing an empty queue precedes every
// later-translated command on the wire, so the client framebuffer at
// probe receipt matches the server screen snapshot taken with the
// probe. Tiles under an active video overlay are skipped: the server
// screen never holds video pixels (the client composites them
// locally), so those tiles legitimately differ.

const (
	// legacyMissLimit: unanswered probes (with no reply ever) before a
	// peer is declared pre-v4 and probing stops.
	legacyMissLimit = 2
	// resyncMissLimit: unanswered probes from a peer that used to
	// answer before the server gives up verifying and resyncs.
	resyncMissLimit = 4
)

// auditConn is one connection's in-flight probe state. Owned by the
// flush loop; the durable cursor (sequence, sweep progress, legacy
// verdict) lives on the core client so it rides reattach.
type auditConn struct {
	inflight bool
	seq      uint32
	sentAt   time.Time
	start, n int      // probed tile window
	total    int      // grid size at probe time
	expect   []uint64 // server-side digests of the window
	skip     []bool   // tiles under a video overlay at probe time
	scrW     int      // screen geometry at probe time; a reply echoing
	scrH     int      // different client geometry is a resize race
	// sweepTiles accumulates divergent tile indices across the chunks
	// of an escalated full sweep, repaired (or abandoned for a resync)
	// when the sweep completes.
	sweepTiles []int
}

// auditTick runs one step of the audit loop: time out a stale probe,
// then send the next one if the client is eligible and fully drained.
func (c *serverConn) auditTick(queue func(wire.Message) error, flush func() error) error {
	o := &c.host.opts
	a := c.cl.Audit()
	if a.Legacy {
		return nil
	}
	met := c.host.met
	if c.aud.inflight {
		if time.Since(c.aud.sentAt) < o.AuditTimeout {
			return nil // still waiting
		}
		c.aud.inflight = false
		a.Misses++
		met.auditTimeouts.Inc()
		c.host.mu.Lock()
		c.host.stats.AuditTimeouts++
		c.host.mu.Unlock()
		if !a.EverReplied && a.Misses >= legacyMissLimit {
			// Never answered a probe: a v2/v3 peer. Stop probing it.
			a.Legacy = true
			met.auditLegacyPeers.Inc()
			c.host.mu.Lock()
			c.host.stats.AuditLegacyPeers++
			c.host.mu.Unlock()
			if tr := met.tr; tr.Enabled() {
				tr.Event("audit.legacy", "user="+c.user)
			}
			return nil
		}
		if a.EverReplied && a.Misses >= resyncMissLimit {
			// It spoke v4 and went silent: integrity can no longer be
			// verified, so resync rather than trust a stale screen.
			c.auditResync("probe timeouts")
			a.Misses = 0
			return nil
		}
	}

	// Build the next probe under the host lock: eligibility, drain
	// check, and the server-side digest snapshot are all taken in one
	// critical section, and the probe is written before the lock-free
	// flush loop can deliver any later-translated command.
	var probe *wire.AuditProbe
	func() {
		c.host.mu.Lock()
		defer c.host.mu.Unlock()
		co := c.host.core
		if !co.AuditSupported() || !c.cl.AuditEligible() {
			return // deferred: lossy rung, scaled viewport, or no screen
		}
		if c.cl.Buf.QueuedBytes() != 0 {
			return // not settled; try again next tick
		}
		g := co.AuditGrid()
		total := g.Tiles()
		if total == 0 {
			return
		}
		start, n := 0, o.AuditSampleTiles
		if a.Sweeping {
			start = a.SweepPos
			if start >= total { // stale cursor from a resized session
				a.ResetSweep()
				c.aud.sweepTiles = nil
				return
			}
		} else {
			if a.Cursor >= total {
				a.Cursor = 0
			}
			start = a.Cursor
		}
		if start+n > total {
			n = total - start
		}
		if !a.Sweeping {
			a.Cursor = start + n
			if a.Cursor >= total {
				a.Cursor = 0
			}
		}
		c.aud.start, c.aud.n, c.aud.total = start, n, total
		c.aud.expect = co.AuditDigests(start, n, c.aud.expect[:0])
		c.aud.skip = c.aud.skip[:0]
		for i := 0; i < n; i++ {
			c.aud.skip = append(c.aud.skip, co.AuditOverlayTile(start+i))
		}
		c.aud.scrW, c.aud.scrH = co.ScreenSize()
		a.Seq++
		c.aud.seq = a.Seq
		probe = &wire.AuditProbe{Seq: a.Seq, Tile: uint16(g.Side),
			Start: uint32(start), Count: uint16(n)}
	}()
	if probe == nil {
		return nil
	}
	c.aud.inflight = true
	c.aud.sentAt = time.Now()
	met.auditProbes.Inc()
	c.host.mu.Lock()
	c.host.stats.AuditProbes++
	c.host.mu.Unlock()
	if err := queue(probe); err != nil {
		return err
	}
	return flush()
}

// auditReply consumes one digest reply: compare, heal divergent tiles
// with targeted repairs, and walk the escalation ladder.
func (c *serverConn) auditReply(r *wire.AuditReply) {
	met := c.host.met
	a := c.cl.Audit()
	a.EverReplied = true
	a.Misses = 0
	met.auditReplies.Inc()
	c.host.mu.Lock()
	c.host.stats.AuditReplies++
	c.host.mu.Unlock()
	if !c.aud.inflight || r.Seq != c.aud.seq {
		return // stale or duplicate reply
	}
	c.aud.inflight = false
	if us := time.Since(c.aud.sentAt).Microseconds(); us >= 0 {
		met.auditRTT.Observe(us)
	}
	if int(r.W) != c.aud.scrW || int(r.H) != c.aud.scrH {
		return // resize race: the reply digests a different geometry
	}

	n := len(r.Digests)
	if n > len(c.aud.expect) {
		n = len(c.aud.expect)
	}
	var bad []int
	for i := 0; i < n; i++ {
		if c.aud.skip[i] {
			continue // live video overlay; legitimately divergent
		}
		if r.Digests[i] != c.aud.expect[i] {
			bad = append(bad, c.aud.start+i)
		}
	}
	if len(bad) > 0 {
		met.auditMismatchedTiles.Add(int64(len(bad)))
		c.host.mu.Lock()
		c.host.stats.AuditMismatches += len(bad)
		c.host.mu.Unlock()
		if tr := met.tr; tr.Enabled() {
			tr.Event("audit.mismatch", fmt.Sprintf("user=%s tiles=%d window=[%d,%d)",
				c.user, len(bad), c.aud.start, c.aud.start+c.aud.n))
		}
	}

	o := &c.host.opts
	if a.Sweeping {
		c.aud.sweepTiles = append(c.aud.sweepTiles, bad...)
		a.SweepBad += len(bad)
		a.SweepPos = c.aud.start + c.aud.n
		if a.SweepPos < c.aud.total {
			return // next chunk goes out on the next audit tick
		}
		// Sweep complete: heal everything it found, or give up on
		// targeted repair when the damage is too broad.
		if a.SweepBad > o.AuditResyncTiles {
			c.auditResync(fmt.Sprintf("sweep found %d divergent tiles", a.SweepBad))
		} else {
			c.auditRepair(c.aud.sweepTiles)
		}
		a.ResetSweep()
		c.aud.sweepTiles = nil
		return
	}
	if len(bad) > o.AuditEscalateTiles {
		// Too much damage for one window: sweep the whole screen before
		// deciding between targeted repair and resync.
		a.Sweeping = true
		a.SweepPos = 0
		a.SweepBad = 0
		c.aud.sweepTiles = nil
		met.auditSweeps.Inc()
		c.host.mu.Lock()
		c.host.stats.AuditSweeps++
		c.host.mu.Unlock()
		if tr := met.tr; tr.Enabled() {
			tr.Event("audit.sweep", fmt.Sprintf("user=%s trigger=%d", c.user, len(bad)))
		}
		return
	}
	if len(bad) > 0 {
		c.auditRepair(bad)
	}
}

// auditRepair queues targeted RAW repaints of the listed tiles.
func (c *serverConn) auditRepair(tiles []int) {
	if len(tiles) == 0 {
		return
	}
	var bytes int
	c.host.mu.Lock()
	bytes = c.host.core.RepairTiles(c.cl, tiles)
	c.host.stats.AuditRepairs += len(tiles)
	c.host.stats.AuditRepairBytes += bytes
	c.host.mu.Unlock()
	met := c.host.met
	met.auditRepairedTiles.Add(int64(len(tiles)))
	met.auditRepairedBytes.Add(int64(bytes))
	if tr := met.tr; tr.Enabled() {
		tr.Event("audit.repair", fmt.Sprintf("user=%s tiles=%d bytes=%d",
			c.user, len(tiles), bytes))
	}
}

// auditResync is the ladder's last rung: a full-screen resync.
func (c *serverConn) auditResync(why string) {
	c.host.mu.Lock()
	c.host.core.ResyncClient(c.cl)
	c.host.stats.AuditResyncs++
	c.host.mu.Unlock()
	c.host.met.auditResyncs.Inc()
	if tr := c.host.met.tr; tr.Enabled() {
		tr.Event("audit.resync", "user="+c.user+" why="+why)
	}
	c.cl.Audit().ResetSweep()
	c.aud.sweepTiles = nil
	c.aud.inflight = false
}
