package server

import (
	"testing"
	"time"

	"thinc/internal/client"
	"thinc/internal/core"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/xserver"
)

// auditOptions: fast audit cadence over a 96x64 screen with 16px tiles
// (a 6x4 grid, 24 tiles), so the rotating 16-tile window covers the
// screen in two probes.
func auditOptions() Options {
	return Options{
		FlushInterval: time.Millisecond,
		AuditInterval: 10 * time.Millisecond,
		AuditTimeout:  250 * time.Millisecond,
		Core:          core.Options{AuditTileSize: 16},
	}
}

// paintTestScene draws deterministic content across the whole screen.
func paintTestScene(host *Host) {
	host.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, 96, 64))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(30, 60, 90)}, geom.XYWH(0, 0, 96, 64))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(200, 50, 10)}, geom.XYWH(8, 8, 40, 30))
		d.DrawText(win, &xserver.GC{Fg: pixel.RGB(255, 255, 255)}, 10, 40, "audit")
	})
}

// corruptTiles flips one pixel inside each listed tile of the client's
// live framebuffer — silent corruption that no decoder can see.
func corruptTiles(conn *client.Conn, tiles ...int) {
	conn.WithFB(func(f *fb.Framebuffer) {
		g := fb.Grid(f.W(), f.H(), 16)
		for _, i := range tiles {
			r := g.Rect(i)
			f.Set(r.X0, r.Y0, f.At(r.X0, r.Y0)^0x00000100)
		}
	})
}

func TestAuditHealsSilentCorruption(t *testing.T) {
	host, addr := startHost(t, 96, 64, auditOptions())
	conn, err := client.Dial(addr, "owner", "pw", 96, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()

	paintTestScene(host)
	want := host.ScreenChecksum()
	waitFor(t, "initial convergence", func() bool {
		return conn.Snapshot().Checksum() == want
	})

	// Silently diverge two tiles in different probe windows. The audit
	// must localize and heal them with targeted repairs — no resync.
	corruptTiles(conn, 2, 20)
	waitFor(t, "self-healing", func() bool {
		return conn.Snapshot().Checksum() == want
	})

	rs := host.Resilience()
	if rs.AuditProbes == 0 || rs.AuditReplies == 0 {
		t.Fatalf("no audit traffic: %+v", rs)
	}
	if rs.AuditMismatches < 2 {
		t.Errorf("AuditMismatches = %d, want >= 2", rs.AuditMismatches)
	}
	if rs.AuditRepairs < 2 || rs.AuditRepairBytes < 2*16*16*4 {
		t.Errorf("repairs = %d tiles / %d bytes, want >= 2 / %d",
			rs.AuditRepairs, rs.AuditRepairBytes, 2*16*16*4)
	}
	if rs.AuditResyncs != 0 {
		t.Errorf("small divergence escalated to %d resyncs", rs.AuditResyncs)
	}
	if rs.AuditSweeps != 0 {
		t.Errorf("small divergence escalated to %d sweeps", rs.AuditSweeps)
	}
	st := conn.Stats()
	if st.AuditProbes == 0 || st.AuditReplies == 0 {
		t.Errorf("client saw %d probes / %d replies", st.AuditProbes, st.AuditReplies)
	}
}

func TestAuditEscalatesToSweepAndResync(t *testing.T) {
	host, addr := startHost(t, 96, 64, auditOptions())
	conn, err := client.Dial(addr, "owner", "pw", 96, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()

	paintTestScene(host)
	want := host.ScreenChecksum()
	waitFor(t, "initial convergence", func() bool {
		return conn.Snapshot().Checksum() == want
	})

	// Diverge every tile: the sampled window overflows the escalation
	// threshold, the sweep overflows the resync threshold, and the
	// ladder's last rung heals the screen wholesale.
	all := make([]int, 24)
	for i := range all {
		all[i] = i
	}
	corruptTiles(conn, all...)
	waitFor(t, "resync healing", func() bool {
		return conn.Snapshot().Checksum() == want
	})

	rs := host.Resilience()
	if rs.AuditSweeps < 1 {
		t.Errorf("AuditSweeps = %d, want >= 1", rs.AuditSweeps)
	}
	if rs.AuditResyncs < 1 {
		t.Errorf("AuditResyncs = %d, want >= 1", rs.AuditResyncs)
	}
}

func TestAuditLegacyPeerLeftAlone(t *testing.T) {
	opts := auditOptions()
	opts.AuditTimeout = 20 * time.Millisecond
	host, addr := startHost(t, 96, 64, opts)
	conn, err := client.Dial(addr, "owner", "pw", 96, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetAuditDisabled(true) // a faithful v2/v3 peer: probes ignored
	go conn.Run()

	waitFor(t, "legacy verdict", func() bool {
		return host.Resilience().AuditLegacyPeers == 1
	})
	probesAtVerdict := host.Resilience().AuditProbes
	time.Sleep(100 * time.Millisecond)
	rs := host.Resilience()
	if rs.AuditProbes != probesAtVerdict {
		t.Errorf("server kept probing a legacy peer: %d -> %d probes",
			probesAtVerdict, rs.AuditProbes)
	}
	if rs.AuditResyncs != 0 {
		t.Errorf("legacy peer was resynced %d times", rs.AuditResyncs)
	}

	// The session itself must be unaffected: drawing still converges.
	paintTestScene(host)
	want := host.ScreenChecksum()
	waitFor(t, "legacy peer convergence", func() bool {
		return conn.Snapshot().Checksum() == want
	})
	if st := conn.Stats(); st.AuditReplies != 0 {
		t.Errorf("legacy peer answered %d probes", st.AuditReplies)
	}
}

func TestAuditDisabled(t *testing.T) {
	opts := auditOptions()
	opts.DisableAudit = true
	host, addr := startHost(t, 96, 64, opts)
	conn, err := client.Dial(addr, "owner", "pw", 96, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()

	paintTestScene(host)
	want := host.ScreenChecksum()
	waitFor(t, "convergence", func() bool {
		return conn.Snapshot().Checksum() == want
	})
	time.Sleep(50 * time.Millisecond)
	if rs := host.Resilience(); rs.AuditProbes != 0 {
		t.Errorf("DisableAudit sent %d probes", rs.AuditProbes)
	}
	if st := conn.Stats(); st.AuditProbes != 0 {
		t.Errorf("client saw %d probes with audit disabled", st.AuditProbes)
	}
}

func TestAuditDeferredWhileDegraded(t *testing.T) {
	host, addr := startHost(t, 96, 64, auditOptions())
	conn, err := client.Dial(addr, "owner", "pw", 96, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()

	paintTestScene(host)
	want := host.ScreenChecksum()
	waitFor(t, "convergence", func() bool {
		return conn.Snapshot().Checksum() == want
	})

	// Pin a lossy rung: probes must stop (a lossy screen never
	// byte-matches), then resume once the ladder recovers.
	host.ForceRung(2)
	time.Sleep(30 * time.Millisecond) // drain any probe already in flight
	before := host.Resilience().AuditProbes
	time.Sleep(60 * time.Millisecond)
	if got := host.Resilience().AuditProbes; got != before {
		t.Errorf("audited a degraded client: %d -> %d probes", before, got)
	}
	host.ForceRung(0)
	waitFor(t, "audit re-armed after recovery", func() bool {
		return host.Resilience().AuditProbes > before
	})
}
