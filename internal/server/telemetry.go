package server

import (
	"sync/atomic"

	"thinc/internal/compress"
	"thinc/internal/core"
	"thinc/internal/overload"
	"thinc/internal/telemetry"
	"thinc/internal/wire"
)

// hostMetrics is the server-side instrument bundle: wire traffic by
// command type, heartbeat RTT, session lifecycle, and scrape-time
// gauges over the scheduler queues. One bundle per Host — tests run
// many Hosts in one process, so nothing here is a package global.
type hostMetrics struct {
	reg *telemetry.Registry
	tr  *telemetry.Tracer

	// byType maps every wire.Type to its labeled counter pair; display
	// and streaming types get their own label, the rest pool as
	// "control". Indexed lookup keeps the write path allocation-free.
	msgsByType  [256]*telemetry.Counter
	bytesByType [256]*telemetry.Counter

	hbRTT      *telemetry.Histogram
	flushBatch *telemetry.Histogram

	attaches, reattaches, reaps, slowResyncs *telemetry.Counter
	expiredSessions, skippedUnknown          *telemetry.Counter
	badHandshakes, heartbeatsSent            *telemetry.Counter

	overloadUps, overloadDowns *telemetry.Counter
	overloadResyncs            *telemetry.Counter
	watchdogRecoveries         *telemetry.Counter

	viewerAttaches, viewersRejected *telemetry.Counter
	viewerInputDropped              *telemetry.Counter

	auditProbes, auditReplies                *telemetry.Counter
	auditMismatchedTiles, auditRepairedTiles *telemetry.Counter
	auditRepairedBytes                       *telemetry.Counter
	auditSweeps, auditResyncs                *telemetry.Counter
	auditTimeouts, auditLegacyPeers          *telemetry.Counter
	auditRTT                                 *telemetry.Histogram

	// End-to-end mark loop (wire v5): mark/ack bookkeeping, the four
	// pipeline stages with sub-millisecond buckets, and the headline
	// client-perceived latency broken down by degradation rung.
	e2eMarks, e2eAcks            *telemetry.Counter
	e2eTimeouts, e2eLegacyPeers  *telemetry.Counter
	e2eStageQueue, e2eStageWrite *telemetry.Histogram
	e2eStageWire, e2eStageApply  *telemetry.Histogram
	e2eLatency                   [overload.NumRungs]*telemetry.Histogram

	// Content-addressed payload cache (wire v6): handshake grants and
	// desync repairs. Hit/store/saved-byte counters live in core.Metrics,
	// which registers into the same registry.
	cacheGrants, cacheMissRepairs *telemetry.Counter

	// Warm reattach and storm admission (wire v7).
	warmReattaches, coldReattaches *telemetry.Counter
	reattachRejected               *telemetry.Counter

	// perConn enables the per-connection series of registerConn. A
	// private single-Host bundle keeps them; a Fleet sharing one bundle
	// across thousands of hosts disables them — the registry's series
	// lookup is linear, so 10k per-conn registrations would turn every
	// attach into an O(n) scan (and the scrape into a labels flood).
	perConn bool
}

// wireTypeLabels names the per-type series: the five display commands
// (§4.3), the native streaming channels (§4.2), and "control" for
// everything else (handshake, heartbeat, tickets, cursor).
var wireTypeLabels = []struct {
	label string
	types []wire.Type
}{
	{"raw", []wire.Type{wire.TRaw}},
	{"copy", []wire.Type{wire.TCopy}},
	{"sfill", []wire.Type{wire.TSFill}},
	{"pfill", []wire.Type{wire.TPFill}},
	{"bitmap", []wire.Type{wire.TBitmap}},
	{"video", []wire.Type{wire.TVideoInit, wire.TVideoFrame, wire.TVideoMove, wire.TVideoEnd}},
	{"audio", []wire.Type{wire.TAudioData}},
	{"cache", []wire.Type{wire.TCacheStore, wire.TCachePaint, wire.TCacheMiss}},
	{"control", nil}, // every remaining type
}

// defaultHostMetrics builds the private single-Host bundle: its own
// registry and tracer, per-conn series enabled. The caller registers
// the host-bound gauges with registerHostGauges once the Host exists.
func defaultHostMetrics() *hostMetrics {
	m := newHostMetrics(telemetry.NewRegistry(), telemetry.NewTracer(4096))
	m.perConn = true
	return m
}

// newHostMetrics registers every host instrument into reg. It carries
// no reference to any Host, so a Fleet can share one bundle across all
// its hosts; registration is idempotent per (name, labels), making the
// process-wide CounterFuncs safe to re-register.
func newHostMetrics(reg *telemetry.Registry, tr *telemetry.Tracer) *hostMetrics {
	m := &hostMetrics{
		reg: reg,
		tr:  tr,
		hbRTT: reg.Histogram("thinc_heartbeat_rtt_us",
			"round-trip time of server heartbeats", telemetry.LatencyBucketsUS),
		flushBatch: reg.Histogram("thinc_server_flush_batch_bytes",
			"wire bytes written per non-empty flush tick", telemetry.ByteBuckets),
		attaches: reg.Counter("thinc_session_attaches_total",
			"fresh client attaches"),
		reattaches: reg.Counter("thinc_session_reattaches_total",
			"ticket reattaches into a retained session"),
		reaps: reg.Counter("thinc_session_reaps_total",
			"connections torn down by heartbeat or write timeout"),
		slowResyncs: reg.Counter("thinc_session_slow_resyncs_total",
			"backlogs discarded under the slow-client policy"),
		expiredSessions: reg.Counter("thinc_session_expired_total",
			"detached sessions that outlived the grace period"),
		skippedUnknown: reg.Counter("thinc_session_skipped_unknown_total",
			"unknown-but-well-framed client messages skipped"),
		badHandshakes: reg.Counter("thinc_session_bad_handshakes_total",
			"handshakes rejected (geometry, protocol)"),
		heartbeatsSent: reg.Counter("thinc_heartbeats_sent_total",
			"server-to-client pings sent"),
		overloadUps: reg.Counter("thinc_overload_transitions_total",
			"degradation ladder rung changes", telemetry.L("dir", "up")),
		overloadDowns: reg.Counter("thinc_overload_transitions_total",
			"degradation ladder rung changes", telemetry.L("dir", "down")),
		overloadResyncs: reg.Counter("thinc_overload_resyncs_total",
			"resyncs forced by the degradation ladder's last rung"),
		watchdogRecoveries: reg.Counter("thinc_watchdog_recoveries_total",
			"connection-goroutine panics converted to clean teardown"),
		viewerAttaches: reg.Counter("thinc_session_viewer_attaches_total",
			"attaches with the viewer role (fresh or resumed)"),
		viewersRejected: reg.Counter("thinc_session_viewers_rejected_total",
			"viewer attaches refused by the MaxViewers bound"),
		viewerInputDropped: reg.Counter("thinc_session_viewer_input_dropped_total",
			"input events from viewer-role connections discarded"),
		auditProbes: reg.Counter("thinc_audit_probes_total",
			"integrity-audit probes sent to clients"),
		auditReplies: reg.Counter("thinc_audit_replies_total",
			"integrity-audit digest replies received"),
		auditMismatchedTiles: reg.Counter("thinc_audit_mismatched_tiles_total",
			"framebuffer tiles whose client digest diverged"),
		auditRepairedTiles: reg.Counter("thinc_audit_repaired_tiles_total",
			"divergent tiles healed by targeted RAW repair"),
		auditRepairedBytes: reg.Counter("thinc_audit_repaired_bytes_total",
			"uncompressed payload bytes of targeted tile repairs"),
		auditSweeps: reg.Counter("thinc_audit_sweeps_total",
			"escalations from sampled window to full-screen sweep"),
		auditResyncs: reg.Counter("thinc_audit_resyncs_total",
			"full resyncs forced by the audit escalation ladder"),
		auditTimeouts: reg.Counter("thinc_audit_timeouts_total",
			"audit probes unanswered past the timeout"),
		auditLegacyPeers: reg.Counter("thinc_audit_legacy_peers_total",
			"pre-v4 peers detected by probe silence and left alone"),
		auditRTT: reg.Histogram("thinc_audit_probe_rtt_us",
			"round-trip time of answered integrity probes", telemetry.LatencyBucketsUS),
		e2eMarks: reg.Counter("thinc_e2e_marks_total",
			"end-to-end TimeMarks appended to flush batches"),
		e2eAcks: reg.Counter("thinc_e2e_acks_total",
			"MarkAcks received and matched to an in-flight mark"),
		e2eTimeouts: reg.Counter("thinc_e2e_timeouts_total",
			"marks that expired unacknowledged"),
		e2eLegacyPeers: reg.Counter("thinc_e2e_legacy_peers_total",
			"pre-v5 peers detected by mark silence and left unmarked"),
		e2eStageQueue: reg.Histogram("thinc_e2e_stage_ns",
			"per-stage share of acknowledged end-to-end update latency",
			telemetry.FineLatencyBucketsNS, telemetry.L("stage", "queue")),
		e2eStageWrite: reg.Histogram("thinc_e2e_stage_ns",
			"per-stage share of acknowledged end-to-end update latency",
			telemetry.FineLatencyBucketsNS, telemetry.L("stage", "write")),
		e2eStageWire: reg.Histogram("thinc_e2e_stage_ns",
			"per-stage share of acknowledged end-to-end update latency",
			telemetry.FineLatencyBucketsNS, telemetry.L("stage", "wire")),
		e2eStageApply: reg.Histogram("thinc_e2e_stage_ns",
			"per-stage share of acknowledged end-to-end update latency",
			telemetry.FineLatencyBucketsNS, telemetry.L("stage", "apply")),
		cacheGrants: reg.Counter("thinc_cache_grants_total",
			"handshakes granted a payload cache capacity (wire v6)"),
		cacheMissRepairs: reg.Counter("thinc_cache_miss_repairs_total",
			"CACHE_MISS desync reports healed by forget-and-repaint"),
		warmReattaches: reg.Counter("thinc_reattach_warm_total",
			"reattaches resumed with the payload cache kept warm (wire v7)"),
		coldReattaches: reg.Counter("thinc_reattach_cold_total",
			"reattaches renegotiated cold (no claim, stale epoch, resize)"),
		reattachRejected: reg.Counter("thinc_reattach_rejected_total",
			"reattaches refused by the storm admission gate (ATTACH_BUSY)"),
	}
	for r := 0; r < overload.NumRungs; r++ {
		m.e2eLatency[r] = reg.Histogram("thinc_e2e_latency_us",
			"client-perceived damage-to-glass latency by degradation rung",
			telemetry.LatencyBucketsUS, telemetry.L("rung", overload.RungName(r)))
	}

	// The tracer overwrites its oldest events when the ring wraps; the
	// counter makes that loss visible to scrapes and span consumers.
	reg.CounterFunc("thinc_trace_dropped_total",
		"trace events overwritten before they could be read",
		func() int64 { return m.tr.Dropped() })

	// Per-type wire counters, pre-registered so /metrics always lists
	// every command type, active or not.
	var control, controlBytes *telemetry.Counter
	for _, e := range wireTypeLabels {
		l := telemetry.L("type", e.label)
		mc := reg.Counter("thinc_wire_messages_total",
			"protocol messages written to clients by command type", l)
		bc := reg.Counter("thinc_wire_bytes_total",
			"wire bytes written to clients by command type", l)
		if e.label == "control" {
			control, controlBytes = mc, bc
			continue
		}
		for _, t := range e.types {
			m.msgsByType[t] = mc
			m.bytesByType[t] = bc
		}
	}
	for i := range m.msgsByType {
		if m.msgsByType[i] == nil {
			m.msgsByType[i] = control
			m.bytesByType[i] = controlBytes
		}
	}

	// Encode fast-path counters: pool and vectored-write activity from
	// the wire batch encoder and the codec scratch pool. These are
	// process-wide atomics read only at scrape time, so the encode path
	// itself stays free of registry lookups.
	reg.CounterFunc("thinc_wire_encode_pool_gets_total",
		"encode buffers borrowed from the wire pool",
		func() int64 { return wire.Stats().PoolGets })
	reg.CounterFunc("thinc_wire_encode_pool_misses_total",
		"encode buffer borrows that had to allocate",
		func() int64 { return wire.Stats().PoolMisses })
	reg.CounterFunc("thinc_wire_vectored_writes_total",
		"payload slabs written by reference instead of copied",
		func() int64 { return wire.Stats().VectoredWrites })
	reg.CounterFunc("thinc_wire_vectored_bytes_total",
		"payload bytes that skipped the batch-buffer copy",
		func() int64 { return wire.Stats().VectoredBytes })
	reg.CounterFunc("thinc_codec_scratch_gets_total",
		"codec payload buffers borrowed from the compress scratch pool",
		func() int64 { return compress.PoolStats().Gets })
	reg.CounterFunc("thinc_codec_scratch_misses_total",
		"codec scratch borrows that had to allocate",
		func() int64 { return compress.PoolStats().Misses })

	// Fan-out amplification: per-client deliveries per translated
	// command, in thousandths (a session with one owner and three
	// viewers reads 4000). Computed from the core fan-out counters at
	// scrape time.
	reg.GaugeFunc("thinc_fanout_amplification_milli",
		"fan-out deliveries per translated screen command, x1000",
		func() int64 {
			deliveries := reg.Value("thinc_fanout_deliveries_total")
			translated := reg.Value("thinc_translate_commands_total",
				telemetry.L("dest", "screen"))
			if translated == 0 {
				return 0
			}
			return deliveries * 1000 / translated
		})
	// Cache effectiveness: hits per cache-eligible delivery (hits plus
	// stores), in thousandths. A steady-state repeat-heavy desktop reads
	// close to 1000; a cold or thrashing cache reads near 0. Computed
	// from the core counters at scrape time.
	reg.GaugeFunc("thinc_cache_hit_ratio_milli",
		"cache hits per cache-eligible payload delivery, x1000",
		func() int64 {
			hits := reg.Value("thinc_cache_hits_total")
			total := hits + reg.Value("thinc_cache_stores_total")
			if total == 0 {
				return 0
			}
			return hits * 1000 / total
		})
	return m
}

// registerHostGauges publishes the scrape-time gauges bound to one
// Host: point-in-time state read under its lock only when /metrics is
// hit — the command path never touches these. A Fleet sharing one
// bundle skips this (its aggregates are registered fleet-wide instead).
func (m *hostMetrics) registerHostGauges(h *Host) {
	reg := m.reg
	reg.GaugeFunc("thinc_clients", "attached display clients",
		func() int64 { return int64(h.NumClients()) })
	reg.GaugeFunc("thinc_session_viewers", "live viewer-role connections",
		func() int64 { return int64(h.NumViewers()) })
	reg.GaugeFunc("thinc_detached_sessions", "sessions retained for reattach",
		func() int64 { return int64(h.NumDetached()) })
	// Storm admission gate occupancy: in-flight cold resyncs and the
	// high-watermark since start (never exceeds the configured budget).
	reg.GaugeFunc("thinc_reattach_resyncs_inflight",
		"cold-reattach resyncs currently holding an admission slot",
		func() int64 { n, _, _ := h.resync.snapshot(); return int64(n) })
	reg.GaugeFunc("thinc_reattach_resyncs_peak",
		"high-watermark of concurrent admitted cold-reattach resyncs",
		func() int64 { _, p, _ := h.resync.snapshot(); return int64(p) })
	for q := 0; q <= core.NumQueues; q++ {
		q := q
		label := telemetry.L("queue", queueName(q))
		reg.GaugeFunc("thinc_sched_queue_depth",
			"commands waiting per SRSF queue across all clients",
			func() int64 { d, _ := h.queueLoads(); return d[q] }, label)
		reg.GaugeFunc("thinc_sched_queue_bytes",
			"wire bytes waiting per SRSF queue across all clients",
			func() int64 { _, b := h.queueLoads(); return b[q] }, label)
	}
}

// registerConn publishes one connection's per-client series: the
// active degradation rung, budget-eviction count, and watchdog
// recoveries, labeled client="user#n" with n unique per Host. Series
// outlive the connection (they describe the session's history; the
// registry has no unregister), so the label embeds the connection
// sequence number rather than reusing the user name.
func (m *hostMetrics) registerConn(h *Host, label string, sc *serverConn) {
	if !m.perConn {
		return
	}
	l := telemetry.L("client", label)
	m.reg.GaugeFunc("thinc_client_degrade_rung",
		"active degradation ladder rung for this client",
		func() int64 { return int64(atomic.LoadInt32(&sc.rung)) }, l)
	m.reg.CounterFunc("thinc_client_budget_evictions_total",
		"commands replaced by this client's queue byte budget",
		func() int64 {
			h.mu.Lock()
			defer h.mu.Unlock()
			return int64(sc.cl.Buf.Stats.BudgetEvicted)
		}, l)
	m.reg.CounterFunc("thinc_client_watchdog_recoveries_total",
		"panics this client's connection goroutines survived",
		func() int64 { return atomic.LoadInt64(&sc.watchdogs) }, l)
}

// queueName labels SRSF queues "0".."9" plus the real-time queue "rt".
func queueName(q int) string {
	if q == core.NumQueues {
		return "rt"
	}
	return string(rune('0' + q))
}

// queueLoads snapshots per-queue occupancy under the Host lock.
func (h *Host) queueLoads() (depth, bytes [core.NumQueues + 1]int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.core.QueueLoads()
}

// Telemetry returns the Host's metrics registry, for export through
// telemetry.Serve or a bench snapshot.
func (h *Host) Telemetry() *telemetry.Registry { return h.met.reg }

// Tracer returns the Host's command-path tracer. It records only while
// enabled (telemetry.Serve enables it for the debug listener).
func (h *Host) Tracer() *telemetry.Tracer { return h.met.tr }
