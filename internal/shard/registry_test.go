package shard

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestRegistryBasicLifecycle(t *testing.T) {
	r := NewRegistry(4)
	a, b := new(int), new(int)
	if !r.Attach("k", a) {
		t.Fatalf("attach new key failed")
	}
	if r.Attach("k", b) {
		t.Fatalf("double attach succeeded")
	}
	if v, det, ok := r.Get("k"); !ok || det || v != a {
		t.Fatalf("Get = %v %v %v", v, det, ok)
	}
	// Identity-checked ops refuse a stale value.
	if r.Detach("k", b) {
		t.Fatalf("detach with wrong identity succeeded")
	}
	if r.Remove("k", b) {
		t.Fatalf("remove with wrong identity succeeded")
	}
	// Claim only consumes detached entries.
	if _, ok := r.Claim("k", nil); ok {
		t.Fatalf("claimed an attached entry")
	}
	if !r.Detach("k", a) {
		t.Fatalf("detach failed")
	}
	if r.Detach("k", a) {
		t.Fatalf("double detach succeeded")
	}
	if r.NumDetached() != 1 {
		t.Fatalf("NumDetached = %d", r.NumDetached())
	}
	// Predicate veto leaves the entry.
	if _, ok := r.Claim("k", func(any) bool { return false }); ok {
		t.Fatalf("claim passed a vetoing predicate")
	}
	v, ok := r.Claim("k", func(got any) bool { return got == a })
	if !ok || v != a {
		t.Fatalf("claim = %v %v", v, ok)
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after claim", r.Len())
	}
	// Remove with matching identity.
	r.Attach("k2", a)
	if !r.Remove("k2", a) {
		t.Fatalf("remove failed")
	}
	if r.Remove("k2", a) {
		t.Fatalf("remove of missing key succeeded")
	}
}

func TestRegistryRange(t *testing.T) {
	r := NewRegistry(8)
	vals := map[string]*int{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("t%d", i)
		v := new(int)
		vals[k] = v
		r.Attach(k, v)
		if i%3 == 0 {
			r.Detach(k, v)
		}
	}
	seen, det := 0, 0
	r.Range(func(k string, v any, detached bool) bool {
		if vals[k] != v {
			t.Errorf("range saw wrong value for %s", k)
		}
		seen++
		if detached {
			det++
		}
		// Re-entrancy: calling back into the registry must not
		// deadlock (snapshot-outside-lock contract).
		r.Get(k)
		return true
	})
	if seen != 100 || det != 34 {
		t.Fatalf("range saw %d entries (%d detached), want 100/34", seen, det)
	}
	// Early stop.
	n := 0
	r.Range(func(string, any, bool) bool { n++; return false })
	if n != 1 {
		t.Fatalf("range ignored early stop: %d", n)
	}
}

// refRegistry is the single-mutex reference model: one map, one lock,
// semantics written as directly as possible. The sharded registry
// must be indistinguishable from it.
type refRegistry struct {
	mu sync.Mutex
	m  map[string]regEntry
}

func newRefRegistry() *refRegistry { return &refRegistry{m: map[string]regEntry{}} }

func (r *refRegistry) Attach(k string, v any) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[k]; ok {
		return false
	}
	r.m[k] = regEntry{val: v}
	return true
}

func (r *refRegistry) Get(k string) (any, bool, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.m[k]
	return e.val, e.detached, ok
}

func (r *refRegistry) Detach(k string, v any) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.m[k]
	if !ok || e.val != v || e.detached {
		return false
	}
	e.detached = true
	r.m[k] = e
	return true
}

func (r *refRegistry) Claim(k string, ok func(any) bool) (any, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, present := r.m[k]
	if !present || !e.detached || (ok != nil && !ok(e.val)) {
		return nil, false
	}
	delete(r.m, k)
	return e.val, true
}

func (r *refRegistry) Remove(k string, v any) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.m[k]
	if !ok || e.val != v {
		return false
	}
	delete(r.m, k)
	return true
}

// TestRegistryPropertyVsReference drives the sharded registry and the
// single-mutex reference model through 10k randomized session
// lifecycle ops — attach, detach, reattach-claim, reap-remove, and
// broadcast sweeps — asserting equivalent results and equivalent
// state after every step. The seed is logged; set THINC_SHARD_SEED to
// replay a failure exactly, chaos-harness style.
func TestRegistryPropertyVsReference(t *testing.T) {
	seed := time.Now().UnixNano()
	if s := os.Getenv("THINC_SHARD_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad THINC_SHARD_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("registry property seed=%d (replay: THINC_SHARD_SEED=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed))

	const ops = 10000
	const keys = 64
	key := func(i int) string { return fmt.Sprintf("ticket-%d", i) }
	// Session values: pointers so identity checks are meaningful. A
	// fresh attach under a reused key gets a fresh value, and ops
	// sometimes present a stale (previous) value on purpose.
	live := map[string]*int{}  // current value per key, ref-maintained
	stale := map[string]*int{} // a previously-current value per key
	sh := NewRegistry(7) // odd shard count: exercises uneven hashing
	ref := newRefRegistry()

	check := func(step int, op string) {
		t.Helper()
		for i := 0; i < keys; i++ {
			k := key(i)
			sv, sd, sok := sh.Get(k)
			rv, rd, rok := ref.Get(k)
			if sv != rv || sd != rd || sok != rok {
				t.Fatalf("step %d (%s): key %s diverged: sharded=(%v,%v,%v) ref=(%v,%v,%v) [seed=%d]",
					step, op, k, sv, sd, sok, rv, rd, rok, seed)
			}
		}
		if sh.Len() != len(ref.m) {
			t.Fatalf("step %d (%s): Len %d != ref %d [seed=%d]", step, op, sh.Len(), len(ref.m), seed)
		}
	}

	for step := 0; step < ops; step++ {
		k := key(rng.Intn(keys))
		var op string
		switch rng.Intn(10) {
		case 0, 1, 2: // attach
			op = "attach"
			v := new(int)
			*v = step
			got := sh.Attach(k, v)
			want := ref.Attach(k, v)
			if got != want {
				t.Fatalf("step %d attach(%s) = %v, ref %v [seed=%d]", step, k, got, want, seed)
			}
			if want {
				if old := live[k]; old != nil {
					stale[k] = old
				}
				live[k] = v
			}
		case 3, 4: // detach (sometimes with a stale identity)
			op = "detach"
			v := live[k]
			if rng.Intn(4) == 0 && stale[k] != nil {
				v = stale[k]
			}
			if got, want := sh.Detach(k, v), ref.Detach(k, v); got != want {
				t.Fatalf("step %d detach(%s) = %v, ref %v [seed=%d]", step, k, got, want, seed)
			}
		case 5, 6: // reattach-claim, sometimes predicate-vetoed
			op = "claim"
			var pred func(any) bool
			if rng.Intn(4) == 0 {
				pred = func(any) bool { return false }
			}
			gv, gok := sh.Claim(k, pred)
			wv, wok := ref.Claim(k, pred)
			if gv != wv || gok != wok {
				t.Fatalf("step %d claim(%s) = (%v,%v), ref (%v,%v) [seed=%d]", step, k, gv, gok, wv, wok, seed)
			}
			if wok {
				delete(live, k)
			}
		case 7: // reap-remove (sometimes stale identity, like an expired timer)
			op = "remove"
			v := live[k]
			if rng.Intn(4) == 0 && stale[k] != nil {
				v = stale[k]
			}
			got, want := sh.Remove(k, v), ref.Remove(k, v)
			if got != want {
				t.Fatalf("step %d remove(%s) = %v, ref %v [seed=%d]", step, k, got, want, seed)
			}
			if want {
				delete(live, k)
			}
		case 8: // broadcast sweep: Range must see exactly ref's state
			op = "broadcast"
			type ent struct {
				v   any
				det bool
			}
			got := map[string]ent{}
			sh.Range(func(k string, v any, det bool) bool {
				got[k] = ent{v, det}
				return true
			})
			if len(got) != len(ref.m) {
				t.Fatalf("step %d broadcast saw %d entries, ref %d [seed=%d]", step, len(got), len(ref.m), seed)
			}
			for rk, re := range ref.m {
				ge, ok := got[rk]
				if !ok || ge.v != re.val || ge.det != re.detached {
					t.Fatalf("step %d broadcast diverged at %s [seed=%d]", step, rk, seed)
				}
			}
		case 9: // counters
			op = "counters"
			refDet := 0
			for _, e := range ref.m {
				if e.detached {
					refDet++
				}
			}
			if sh.NumDetached() != refDet {
				t.Fatalf("step %d NumDetached %d != ref %d [seed=%d]", step, sh.NumDetached(), refDet, seed)
			}
		}
		check(step, op)
	}
}

// Race-detector exercise: concurrent mixed ops across many keys.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("g%d-k%d", g, rng.Intn(32))
				v := new(int)
				switch rng.Intn(4) {
				case 0:
					if r.Attach(k, v) {
						r.Detach(k, v)
					}
				case 1:
					r.Claim(k, nil)
				case 2:
					if got, _, ok := r.Get(k); ok {
						r.Remove(k, got)
					}
				case 3:
					r.Len()
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			r.Range(func(string, any, bool) bool { return true })
			r.NumDetached()
		}
		close(done)
	}()
	wg.Wait()
	<-done
}
