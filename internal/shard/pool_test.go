package shard

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func TestTaskWakeRuns(t *testing.T) {
	p := NewPool(2)
	p.Start()
	defer p.Stop()
	var runs atomic.Int64
	tk := p.Task(7, func() { runs.Add(1) })
	if !tk.Wake() {
		t.Fatalf("Wake returned false on live pool")
	}
	waitFor(t, "task run", func() bool { return runs.Load() == 1 })
}

// Wakes landing while a task is queued coalesce into one run; a wake
// landing mid-run buys exactly one follow-up run.
func TestWakeCoalesce(t *testing.T) {
	p := NewPool(1)
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	var runs atomic.Int64
	var tk *Task
	tk = p.Task(0, func() {
		runs.Add(1)
		if runs.Load() == 1 {
			started <- struct{}{}
			<-gate
		}
	})
	// Queue ten wakes before any worker exists: they must coalesce to
	// one queue slot.
	for i := 0; i < 10; i++ {
		tk.Wake()
	}
	p.Start()
	defer p.Stop()
	<-started
	// Mid-run wakes coalesce to a single follow-up.
	for i := 0; i < 10; i++ {
		tk.Wake()
	}
	close(gate)
	waitFor(t, "follow-up run", func() bool { return runs.Load() == 2 })
	time.Sleep(5 * time.Millisecond)
	if got := runs.Load(); got != 2 {
		t.Fatalf("runs=%d, want exactly 2 (1 coalesced + 1 follow-up)", got)
	}
}

// A task with continuous damage (re-wakes itself every run) must not
// starve a shard sibling: the sibling runs within one hog turn of its
// wake, because re-enqueues go to the tail.
func TestFairnessNoStarvation(t *testing.T) {
	p := NewPool(1)
	var hogRuns, bRun, mark, hogTurnsBeforeB atomic.Int64
	var hog, b *Task
	b = p.Task(0, func() {
		bRun.Add(1)
		hogTurnsBeforeB.Store(hogRuns.Load())
	})
	hog = p.Task(0, func() {
		n := hogRuns.Add(1)
		if n == 100 {
			// Wake the sibling from inside a hog turn — the worst
			// case for it: the hog immediately re-wakes itself too.
			mark.Store(n)
			b.Wake()
		}
		hog.Wake() // continuous damage
	})
	p.Start()
	defer func() {
		hog.Close()
		b.Close()
		p.Stop()
	}()
	hog.Wake()
	waitFor(t, "starved task to run", func() bool { return bRun.Load() == 1 })
	// B was queued during hog turn 100; the hog's re-enqueue goes to
	// the tail behind it, so B runs after at most one more hog turn.
	if turns := hogTurnsBeforeB.Load() - mark.Load(); turns > 1 {
		t.Fatalf("sibling waited %d hog turns, want <= 1", turns)
	}
}

// Idle tasks — never woken — consume zero runs and zero queue space.
func TestIdleTasksCostNothing(t *testing.T) {
	p := NewPool(4)
	p.Start()
	defer p.Stop()
	var runs atomic.Int64
	for i := 0; i < 1000; i++ {
		p.Task(uint64(i), func() { runs.Add(1) })
	}
	active := p.Task(1, func() { runs.Add(1) })
	active.Wake()
	waitFor(t, "active task", func() bool { return runs.Load() == 1 })
	st := p.Stats()
	if st.Runs != 1 || st.Wakes != 1 {
		t.Fatalf("1000 idle + 1 active: Runs=%d Wakes=%d, want 1/1", st.Runs, st.Wakes)
	}
	if st.Tasks != 1001 {
		t.Fatalf("Tasks=%d, want 1001", st.Tasks)
	}
	if st.Depth != 0 {
		t.Fatalf("Depth=%d after drain, want 0", st.Depth)
	}
}

func TestCloseSkipsQueuedRun(t *testing.T) {
	p := NewPool(1)
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	blocker := p.Task(0, func() { started <- struct{}{}; <-gate })
	var runs atomic.Int64
	victim := p.Task(0, func() { runs.Add(1) })
	p.Start()
	defer p.Stop()
	blocker.Wake()
	<-started
	victim.Wake()
	victim.Close()
	if victim.Wake() {
		t.Fatalf("Wake after Close returned true")
	}
	close(gate)
	time.Sleep(5 * time.Millisecond)
	if runs.Load() != 0 {
		t.Fatalf("closed task still ran")
	}
}

func TestCloseWaitBlocksForInflight(t *testing.T) {
	p := NewPool(1)
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	var done atomic.Bool
	tk := p.Task(0, func() {
		started <- struct{}{}
		<-gate
		done.Store(true)
	})
	p.Start()
	defer p.Stop()
	tk.Wake()
	<-started
	closed := make(chan struct{})
	go func() {
		tk.CloseWait()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatalf("CloseWait returned while callback in flight")
	case <-time.After(10 * time.Millisecond):
	}
	close(gate)
	<-closed
	if !done.Load() {
		t.Fatalf("CloseWait returned before callback finished")
	}
}

// Teardown runs on the shard worker itself — a task closing itself
// from inside its callback must not deadlock.
func TestSelfCloseFromCallback(t *testing.T) {
	p := NewPool(1)
	p.Start()
	defer p.Stop()
	done := make(chan struct{})
	var tk *Task
	tk = p.Task(0, func() {
		tk.Close()
		close(done)
	})
	tk.Wake()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("self-close deadlocked")
	}
}

func TestStopDrainsQueued(t *testing.T) {
	p := NewPool(2)
	var runs atomic.Int64
	var tasks []*Task
	for i := 0; i < 50; i++ {
		tasks = append(tasks, p.Task(uint64(i), func() { runs.Add(1) }))
	}
	for _, tk := range tasks {
		tk.Wake()
	}
	p.Start()
	p.Stop()
	if runs.Load() != 50 {
		t.Fatalf("Stop drained %d of 50 queued runs", runs.Load())
	}
	if tasks[0].Wake() {
		t.Fatalf("Wake after Stop returned true")
	}
}

func TestPoolHooksObserveWaitAndRun(t *testing.T) {
	p := NewPool(1)
	var waits, runsObs atomic.Int64
	p.OnWait = func(ns int64) { waits.Add(1) }
	p.OnRun = func(ns int64) {
		if ns < 0 {
			t.Errorf("negative run time")
		}
		runsObs.Add(1)
	}
	p.Start()
	tk := p.Task(0, func() { time.Sleep(time.Millisecond) })
	tk.Wake()
	p.Stop()
	if waits.Load() != 1 || runsObs.Load() != 1 {
		t.Fatalf("hooks observed waits=%d runs=%d, want 1/1", waits.Load(), runsObs.Load())
	}
}

// Hammer the queue state machine under the race detector.
func TestPoolConcurrentWakeClose(t *testing.T) {
	p := NewPool(4)
	p.Start()
	defer p.Stop()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			var n atomic.Int64
			tk := p.Task(uint64(i), func() { n.Add(1) })
			for j := 0; j < 200; j++ {
				tk.Wake()
				if j%50 == 49 {
					time.Sleep(time.Millisecond)
				}
			}
			tk.CloseWait()
		}()
	}
	wg.Wait()
}

func TestSchedulerLifecycle(t *testing.T) {
	s := NewScheduler(Options{})
	if s.Pool().NumShards() != DefaultShards {
		t.Fatalf("default shards = %d", s.Pool().NumShards())
	}
	var ran atomic.Bool
	done := make(chan struct{})
	tk := s.Pool().Task(Hash("ticket"), func() { ran.Store(true); close(done) })
	s.Wheel().After(time.Millisecond, func() { tk.Wake() })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("wheel→task pipeline never fired")
	}
	s.Registry().Attach("ticket", 1)
	if s.Registry().Len() != 1 {
		t.Fatalf("registry len")
	}
	s.Close()
	if !ran.Load() {
		t.Fatalf("task never ran")
	}
}
