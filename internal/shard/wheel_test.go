package shard

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Tests drive the wheel by calling advance directly (the wheel is
// never Started), so firing is deterministic — no sleeps, no flakes.

func TestWheelAfterFiresOnce(t *testing.T) {
	w := NewWheel(time.Millisecond, 8)
	var fired atomic.Int64
	w.After(3*time.Millisecond, func() { fired.Add(1) })
	w.advance(2)
	if fired.Load() != 0 {
		t.Fatalf("fired early at tick 2")
	}
	w.advance(3)
	if fired.Load() != 1 {
		t.Fatalf("fired=%d at deadline, want 1", fired.Load())
	}
	w.advance(100)
	if fired.Load() != 1 {
		t.Fatalf("one-shot fired again: %d", fired.Load())
	}
	if st := w.Stats(); st.Fired != 1 || st.Pending != 0 {
		t.Fatalf("stats = %+v, want Fired=1 Pending=0", st)
	}
}

func TestWheelSubTickRoundsUp(t *testing.T) {
	w := NewWheel(time.Millisecond, 8)
	var fired atomic.Int64
	w.After(0, func() { fired.Add(1) })
	w.After(time.Microsecond, func() { fired.Add(1) })
	w.advance(1)
	if fired.Load() != 2 {
		t.Fatalf("fired=%d after one tick, want 2", fired.Load())
	}
}

func TestWheelEveryRearms(t *testing.T) {
	w := NewWheel(time.Millisecond, 8)
	var fired atomic.Int64
	tm := w.Every(2*time.Millisecond, func() { fired.Add(1) })
	for i := int64(1); i <= 10; i++ {
		w.advance(i)
	}
	if fired.Load() != 5 {
		t.Fatalf("periodic fired %d times over 10 ticks, want 5", fired.Load())
	}
	if !tm.Stop() {
		t.Fatalf("Stop on re-armed periodic returned false")
	}
}

func TestWheelEveryStop(t *testing.T) {
	w := NewWheel(time.Millisecond, 8)
	var fired atomic.Int64
	tm := w.Every(2*time.Millisecond, func() { fired.Add(1) })
	w.advance(2)
	if fired.Load() != 1 {
		t.Fatalf("fired=%d, want 1", fired.Load())
	}
	if !tm.Stop() {
		t.Fatalf("Stop on re-armed periodic returned false")
	}
	w.advance(20)
	if fired.Load() != 1 {
		t.Fatalf("periodic fired after Stop: %d", fired.Load())
	}
}

func TestWheelStopPreventsFire(t *testing.T) {
	w := NewWheel(time.Millisecond, 8)
	var fired atomic.Int64
	tm := w.After(3*time.Millisecond, func() { fired.Add(1) })
	if !tm.Stop() {
		t.Fatalf("Stop before firing returned false")
	}
	if tm.Stop() {
		t.Fatalf("second Stop returned true")
	}
	w.advance(10)
	if fired.Load() != 0 {
		t.Fatalf("stopped timer fired")
	}
	st := w.Stats()
	if st.Canceled != 1 || st.Pending != 0 || st.Fired != 0 {
		t.Fatalf("stats = %+v, want Canceled=1 Pending=0 Fired=0", st)
	}
}

// Timers sharing a slot and deadline fire in insertion order — the
// harness depends on FIFO delivery for RC4 stream alignment.
func TestWheelFIFOWithinSlot(t *testing.T) {
	w := NewWheel(time.Millisecond, 8)
	var mu sync.Mutex
	var order []int
	for i := 0; i < 16; i++ {
		i := i
		w.After(4*time.Millisecond, func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	w.advance(10)
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 16 {
		t.Fatalf("fired %d of 16", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("fire order %v not FIFO", order)
		}
	}
}

// A deadline farther out than the slot count must survive the wheel
// wrapping past its slot (lazy rounds).
func TestWheelLongDeadlineSurvivesWrap(t *testing.T) {
	w := NewWheel(time.Millisecond, 8) // 8 slots
	var fired atomic.Int64
	w.After(20*time.Millisecond, func() { fired.Add(1) })
	w.advance(19)
	if fired.Load() != 0 {
		t.Fatalf("fired before deadline despite slot wrap")
	}
	w.advance(20)
	if fired.Load() != 1 {
		t.Fatalf("did not fire at wrapped deadline")
	}
}

// A stalled wheel catching up must fire a periodic timer without
// scheduling it into the past (no firing storm).
func TestWheelStallCatchup(t *testing.T) {
	w := NewWheel(time.Millisecond, 8)
	var fired atomic.Int64
	w.Every(2*time.Millisecond, func() { fired.Add(1) })
	w.advance(100) // one big jump: each pass fires at most once per slot visit
	n := fired.Load()
	if n == 0 {
		t.Fatalf("periodic never fired across stall")
	}
	// After the jump the timer must be armed in the future, not
	// looping: two more ticks fire at most one more time.
	w.advance(101)
	w.advance(102)
	if extra := fired.Load() - n; extra > 1 {
		t.Fatalf("firing storm after stall: %d extra fires", extra)
	}
}

func TestWheelLiveDriver(t *testing.T) {
	w := NewWheel(time.Millisecond, 64)
	w.Start()
	defer w.Stop()
	done := make(chan struct{})
	w.After(5*time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("live wheel never fired a 5ms timer")
	}
	var periodic atomic.Int64
	tm := w.Every(2*time.Millisecond, func() { periodic.Add(1) })
	deadline := time.Now().Add(2 * time.Second)
	for periodic.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if periodic.Load() < 3 {
		t.Fatalf("live periodic fired %d times, want >= 3", periodic.Load())
	}
	tm.Stop()
}

func TestWheelStopIdempotent(t *testing.T) {
	w := NewWheel(time.Millisecond, 8)
	w.Start()
	w.Stop()
	w.Stop() // must not panic or hang
	// After Stop, After still returns a (dead) timer.
	tm := w.After(time.Millisecond, func() { t.Error("fired after Stop") })
	tm.Stop()

	// Stop before Start must not hang either.
	w2 := NewWheel(time.Millisecond, 8)
	w2.Stop()
}
