// Package shard is the substrate of the multi-session delivery core:
// a fixed pool of worker shards draining per-shard FIFO run queues
// (Pool/Task), a hashed timer wheel batching heartbeat/audit/mark
// timers (Wheel), and a sharded session registry (Registry).
//
// The design goal is that an idle session costs zero goroutines and
// zero timer churn: sessions are Tasks that only occupy a run queue
// while they have work, and their periodic obligations are entries in
// a shared wheel rather than per-session time.Timers. Goroutine count
// is O(shards) — one worker per shard plus one wheel driver —
// regardless of how many sessions are registered.
package shard

import "time"

// Options configures a Scheduler.
type Options struct {
	// Shards is the number of run-queue workers. 0 means DefaultShards.
	Shards int
	// WheelTick is the timer wheel granularity. 0 means DefaultWheelTick.
	WheelTick time.Duration
	// WheelSlots is the number of wheel slots (rounded up to a power of
	// two). 0 means DefaultWheelSlots.
	WheelSlots int
	// RegistryShards is the number of registry shards. 0 means Shards.
	RegistryShards int

	// OnTaskWait and OnTaskRun, when set, observe each task run's queue
	// wait and execution time in nanoseconds (telemetry hooks). They
	// run on the worker goroutines, so they must be cheap and
	// concurrency-safe.
	OnTaskWait func(ns int64)
	OnTaskRun  func(ns int64)
}

const (
	// DefaultShards is deliberately small: workers are CPU-bound flush
	// pumps, so a handful saturate the machine long before contention
	// does. Callers hosting many cores' worth of desktops raise it.
	DefaultShards = 4
	// DefaultWheelTick is coarse enough that 10k heartbeat timers cost
	// a few wakeups per millisecond, fine enough for 5ms flush pacing.
	DefaultWheelTick = time.Millisecond
	// DefaultWheelSlots spreads one second of timers at the default
	// tick across distinct slots.
	DefaultWheelSlots = 1024
)

// Scheduler bundles a worker pool, a timer wheel, and a session
// registry — the three pieces every sharded Host shares.
type Scheduler struct {
	pool  *Pool
	wheel *Wheel
	reg   *Registry
}

// NewScheduler builds and starts a scheduler.
func NewScheduler(o Options) *Scheduler {
	if o.Shards <= 0 {
		o.Shards = DefaultShards
	}
	if o.WheelTick <= 0 {
		o.WheelTick = DefaultWheelTick
	}
	if o.WheelSlots <= 0 {
		o.WheelSlots = DefaultWheelSlots
	}
	if o.RegistryShards <= 0 {
		o.RegistryShards = o.Shards
	}
	s := &Scheduler{
		pool:  NewPool(o.Shards),
		wheel: NewWheel(o.WheelTick, o.WheelSlots),
		reg:   NewRegistry(o.RegistryShards),
	}
	s.pool.OnWait = o.OnTaskWait
	s.pool.OnRun = o.OnTaskRun
	s.pool.Start()
	s.wheel.Start()
	return s
}

// Pool returns the worker pool.
func (s *Scheduler) Pool() *Pool { return s.pool }

// Wheel returns the timer wheel.
func (s *Scheduler) Wheel() *Wheel { return s.wheel }

// Registry returns the session registry.
func (s *Scheduler) Registry() *Registry { return s.reg }

// Close stops the wheel and the workers. Outstanding queued tasks are
// drained (run or skipped if closed) before workers exit; timers that
// have not fired never will.
func (s *Scheduler) Close() {
	s.wheel.Stop()
	s.pool.Stop()
}
