package shard

import (
	"sync"
	"sync/atomic"
	"time"
)

// Wheel is a hashed timer wheel: timers hash into slots by deadline
// tick, one driver goroutine advances the wheel and fires every due
// timer in the slot it lands on. Arming and canceling are O(1) and
// lock only one slot, so 10k sessions' heartbeat timers cost a few
// batched wakeups per tick instead of 10k runtime timers.
//
// Callbacks run on the driver goroutine and must be cheap and
// non-blocking — the convention throughout the delivery core is that
// a wheel callback only flips a "due" flag and Wakes a Task.
type Wheel struct {
	tick  time.Duration
	mask  int64
	slots []wheelSlot

	start time.Time
	pos   atomic.Int64 // last fully-fired absolute tick

	stopC chan struct{}
	doneC chan struct{}
	state atomic.Int32 // 0 new, 1 started, 2 stopped

	scheduled atomic.Int64
	fired     atomic.Int64
	canceled  atomic.Int64
	pending   atomic.Int64
	lagNS     atomic.Int64 // lag of the most recent firing pass
}

type wheelSlot struct {
	mu     sync.Mutex
	timers []*Timer
}

// Timer states.
const (
	timerArmed int32 = iota
	timerFiring
	timerStopped
)

// Timer is a handle to a scheduled callback.
type Timer struct {
	w        *Wheel
	fn       func()
	period   int64 // ticks; 0 for one-shot
	deadline int64 // absolute tick
	state    atomic.Int32
}

// NewWheel builds a wheel with the given tick and slot count (rounded
// up to a power of two). Call Start to begin firing.
func NewWheel(tick time.Duration, slots int) *Wheel {
	if tick <= 0 {
		tick = DefaultWheelTick
	}
	n := 1
	for n < slots {
		n <<= 1
	}
	w := &Wheel{
		tick:  tick,
		mask:  int64(n - 1),
		slots: make([]wheelSlot, n),
		start: time.Now(),
		stopC: make(chan struct{}),
		doneC: make(chan struct{}),
	}
	return w
}

// Start launches the driver goroutine.
func (w *Wheel) Start() {
	if !w.state.CompareAndSwap(0, 1) {
		return
	}
	go w.run()
}

// Stop halts the driver. Timers that have not fired never will.
func (w *Wheel) Stop() {
	if w.state.CompareAndSwap(1, 2) {
		close(w.stopC)
		<-w.doneC
		return
	}
	// Never started: mark stopped so After callers see a dead wheel.
	w.state.CompareAndSwap(0, 2)
}

func (w *Wheel) run() {
	defer close(w.doneC)
	t := time.NewTicker(w.tick)
	defer t.Stop()
	for {
		select {
		case <-w.stopC:
			return
		case <-t.C:
			now := time.Since(w.start)
			w.advance(int64(now / w.tick))
		}
	}
}

// advance fires every slot between the current position and target,
// in deadline order. Exposed to in-package tests for deterministic
// driving; production use is only from run().
func (w *Wheel) advance(target int64) {
	pos := w.pos.Load()
	if target <= pos {
		return
	}
	// Lag of this pass: how far behind real time the oldest unfired
	// tick was when we got to it.
	w.lagNS.Store(int64(time.Since(w.start)) - pos*int64(w.tick))
	var due []*Timer
	for pos < target {
		pos++
		w.pos.Store(pos)
		s := &w.slots[pos&w.mask]
		due = w.collect(s, pos, due[:0])
		for _, t := range due {
			w.fire(t)
		}
	}
}

// collect removes due and stopped timers from the slot, returning the
// due ones in insertion (FIFO) order.
func (w *Wheel) collect(s *wheelSlot, pos int64, due []*Timer) []*Timer {
	s.mu.Lock()
	keep := s.timers[:0]
	for _, t := range s.timers {
		switch {
		case t.state.Load() == timerStopped:
			// Dropped lazily; pending was decremented by Stop.
		case t.deadline <= pos:
			due = append(due, t)
		default:
			keep = append(keep, t)
		}
	}
	for i := len(keep); i < len(s.timers); i++ {
		s.timers[i] = nil
	}
	s.timers = keep
	s.mu.Unlock()
	return due
}

func (w *Wheel) fire(t *Timer) {
	if !t.state.CompareAndSwap(timerArmed, timerFiring) {
		return // stopped between collect and fire
	}
	w.fired.Add(1)
	w.pending.Add(-1)
	t.fn()
	if t.period > 0 && t.state.CompareAndSwap(timerFiring, timerArmed) {
		// Re-arm relative to the nominal deadline so periodic timers
		// do not drift, but never into the past after a stall.
		next := t.deadline + t.period
		if pos := w.pos.Load(); next <= pos {
			next = pos + 1
		}
		t.deadline = next
		w.insert(t)
		return
	}
	t.state.Store(timerStopped)
}

func (w *Wheel) insert(t *Timer) {
	w.scheduled.Add(1)
	w.pending.Add(1)
	s := &w.slots[t.deadline&w.mask]
	s.mu.Lock()
	s.timers = append(s.timers, t)
	s.mu.Unlock()
}

// ticks converts a duration to a tick count, minimum one.
func (w *Wheel) ticks(d time.Duration) int64 {
	n := int64(d / w.tick)
	if n < 1 {
		n = 1
	}
	return n
}

// After schedules fn to run once, about d from now (rounded up to the
// wheel tick). The returned Timer can be stopped.
func (w *Wheel) After(d time.Duration, fn func()) *Timer {
	t := &Timer{w: w, fn: fn, deadline: w.pos.Load() + w.ticks(d)}
	w.insert(t)
	return t
}

// Every schedules fn to run about every d, first firing one period
// from now. The returned Timer cancels the series when stopped.
func (w *Wheel) Every(d time.Duration, fn func()) *Timer {
	p := w.ticks(d)
	t := &Timer{w: w, fn: fn, period: p, deadline: w.pos.Load() + p}
	w.insert(t)
	return t
}

// Stop cancels the timer. It returns true if the cancel won — the
// callback has not run and will not. Returning false means the timer
// already fired, is firing on the driver goroutine right now, or was
// already stopped; Stop does not wait for an in-flight callback.
func (t *Timer) Stop() bool {
	if t.state.CompareAndSwap(timerArmed, timerStopped) {
		t.w.canceled.Add(1)
		t.w.pending.Add(-1)
		return true
	}
	// A periodic timer mid-fire: make sure it does not re-arm.
	t.state.CompareAndSwap(timerFiring, timerStopped)
	return false
}

// WheelStats is a point-in-time snapshot of wheel accounting.
type WheelStats struct {
	Scheduled int64 // timers ever inserted (periodic re-arms count)
	Fired     int64
	Canceled  int64
	Pending   int64 // currently armed
	LagNS     int64 // lag of the most recent firing pass
}

// Stats returns current counters.
func (w *Wheel) Stats() WheelStats {
	return WheelStats{
		Scheduled: w.scheduled.Load(),
		Fired:     w.fired.Load(),
		Canceled:  w.canceled.Load(),
		Pending:   w.pending.Load(),
		LagNS:     w.lagNS.Load(),
	}
}
