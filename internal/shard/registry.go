package shard

import "sync"

// Registry is a sharded key→session map with the exact operation set
// the session lifecycle needs: attach (insert live), detach (mark
// retained after disconnect), claim (consume a retained entry on
// reattach), and identity-checked remove (expiry reaping must only
// delete the entry it armed against, never a successor under the same
// key). Mutating ops are conditional on the stored value's identity
// so stale timers and racing teardowns become no-ops instead of
// deleting a live session.
type Registry struct {
	shards []regShard
}

type regShard struct {
	mu sync.RWMutex
	m  map[string]regEntry
}

type regEntry struct {
	val      any
	detached bool
}

// NewRegistry builds a registry with n shards (min 1).
func NewRegistry(n int) *Registry {
	if n < 1 {
		n = 1
	}
	r := &Registry{shards: make([]regShard, n)}
	for i := range r.shards {
		r.shards[i].m = make(map[string]regEntry)
	}
	return r
}

// Hash is FNV-1a over the key — also the shard selector callers use
// to pin a session's Task to the same shard as its registry entry.
func Hash(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

func (r *Registry) shardFor(key string) *regShard {
	return &r.shards[Hash(key)%uint64(len(r.shards))]
}

// Attach inserts a live entry. False if the key is already present.
func (r *Registry) Attach(key string, val any) bool {
	s := r.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; ok {
		return false
	}
	s.m[key] = regEntry{val: val}
	return true
}

// Get returns the stored value and whether it is detached.
func (r *Registry) Get(key string) (val any, detached, ok bool) {
	s := r.shardFor(key)
	s.mu.RLock()
	e, ok := s.m[key]
	s.mu.RUnlock()
	return e.val, e.detached, ok
}

// Detach marks the entry retained-after-disconnect. False unless the
// key maps to exactly val and is currently attached.
func (r *Registry) Detach(key string, val any) bool {
	s := r.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok || e.val != val || e.detached {
		return false
	}
	e.detached = true
	s.m[key] = e
	return true
}

// Claim consumes a detached entry whose value passes ok (called with
// the shard lock held — keep it cheap). It returns the value on
// success; attached entries and predicate failures leave the entry
// untouched.
func (r *Registry) Claim(key string, ok func(val any) bool) (any, bool) {
	s := r.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, present := s.m[key]
	if !present || !e.detached || (ok != nil && !ok(e.val)) {
		return nil, false
	}
	delete(s.m, key)
	return e.val, true
}

// Remove deletes the entry if the key maps to exactly val, in either
// attached or detached state. Reports whether a delete happened.
func (r *Registry) Remove(key string, val any) bool {
	s := r.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok || e.val != val {
		return false
	}
	delete(s.m, key)
	return true
}

// Len counts all entries.
func (r *Registry) Len() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// NumDetached counts retained entries.
func (r *Registry) NumDetached() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for _, e := range s.m {
			if e.detached {
				n++
			}
		}
		s.mu.RUnlock()
	}
	return n
}

// Range visits every entry until fn returns false. Each shard is
// snapshotted under its read lock and visited outside it, so fn may
// call back into the registry.
func (r *Registry) Range(fn func(key string, val any, detached bool) bool) {
	type kv struct {
		k string
		e regEntry
	}
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		snap := make([]kv, 0, len(s.m))
		for k, e := range s.m {
			snap = append(snap, kv{k, e})
		}
		s.mu.RUnlock()
		for _, p := range snap {
			if !fn(p.k, p.e.val, p.e.detached) {
				return
			}
		}
	}
}
