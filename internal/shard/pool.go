package shard

import (
	"sync"
	"time"
)

// Task states, guarded by the owning shard's mutex.
const (
	taskIdle int32 = iota
	taskQueued
	taskRunning
	taskRunningQueued // woken while running: re-enqueue at tail after
)

// Task is a unit of serialized work pinned to one shard. Wake
// enqueues it; the shard worker runs its callback. Wakes coalesce: a
// task occupies at most one queue slot, and a wake that lands while
// the callback runs re-enqueues it at the tail afterwards — so a
// session with continuous damage takes one queue turn per run and can
// never starve its shard siblings.
type Task struct {
	s      *runShard
	fn     func()
	state  int32
	closed bool
	wokeAt time.Time
}

// Pool is a fixed set of worker shards, one goroutine each, draining
// per-shard FIFO run queues.
type Pool struct {
	shards []*runShard
	wg     sync.WaitGroup

	// OnWait and OnRun, if set before Start, observe each run's queue
	// wait and callback duration in nanoseconds (telemetry hooks).
	OnWait func(ns int64)
	OnRun  func(ns int64)
}

type runShard struct {
	mu      sync.Mutex
	cond    *sync.Cond
	q       []*Task
	head    int
	current *Task
	stopped bool

	wakes    int64
	runs     int64
	tasks    int64
	maxDepth int64
}

// NewPool builds a pool with n worker shards (min 1). Call Start.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{shards: make([]*runShard, n)}
	for i := range p.shards {
		s := &runShard{}
		s.cond = sync.NewCond(&s.mu)
		p.shards[i] = s
	}
	return p
}

// NumShards returns the worker count.
func (p *Pool) NumShards() int { return len(p.shards) }

// Start launches one worker goroutine per shard.
func (p *Pool) Start() {
	for _, s := range p.shards {
		p.wg.Add(1)
		go p.work(s)
	}
}

// Stop drains the queues and waits for the workers to exit. Queued
// tasks still run; new Wakes after Stop return false.
func (p *Pool) Stop() {
	for _, s := range p.shards {
		s.mu.Lock()
		s.stopped = true
		s.cond.Broadcast()
		s.mu.Unlock()
	}
	p.wg.Wait()
}

// Task creates a task pinned to the shard selected by key.
func (p *Pool) Task(key uint64, fn func()) *Task {
	s := p.shards[key%uint64(len(p.shards))]
	s.mu.Lock()
	s.tasks++
	s.mu.Unlock()
	return &Task{s: s, fn: fn}
}

// depth reports queued entries; caller holds s.mu.
func (s *runShard) depth() int64 { return int64(len(s.q) - s.head) }

func (s *runShard) push(t *Task) {
	s.q = append(s.q, t)
	if d := s.depth(); d > s.maxDepth {
		s.maxDepth = d
	}
}

func (s *runShard) pop() *Task {
	t := s.q[s.head]
	s.q[s.head] = nil
	s.head++
	if s.head > 64 && s.head*2 >= len(s.q) {
		s.q = append(s.q[:0], s.q[s.head:]...)
		s.head = 0
	}
	return t
}

// Wake schedules the task to run. Returns false if the task is closed
// or the pool stopped; true otherwise (including coalesced wakes).
func (t *Task) Wake() bool {
	s := t.s
	s.mu.Lock()
	if t.closed || s.stopped {
		s.mu.Unlock()
		return false
	}
	s.wakes++
	switch t.state {
	case taskIdle:
		t.state = taskQueued
		t.wokeAt = time.Now()
		s.push(t)
		s.cond.Signal()
	case taskRunning:
		t.state = taskRunningQueued
		t.wokeAt = time.Now()
	}
	s.mu.Unlock()
	return true
}

// Close marks the task dead: pending queue entries are skipped and
// future Wakes refused. It does not wait for an in-flight callback —
// safe to call from the task's own callback during teardown.
func (t *Task) Close() {
	s := t.s
	s.mu.Lock()
	if !t.closed {
		t.closed = true
		s.tasks--
		if t.state == taskRunningQueued {
			t.state = taskRunning // suppress the re-enqueue
		}
	}
	s.mu.Unlock()
}

// CloseWait is Close plus a wait for any in-flight callback to
// return. It must NOT be called from the task's own callback — that
// would deadlock waiting on itself.
func (t *Task) CloseWait() {
	t.Close()
	s := t.s
	s.mu.Lock()
	for s.current == t {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

func (p *Pool) work(s *runShard) {
	defer p.wg.Done()
	s.mu.Lock()
	for {
		for s.depth() == 0 && !s.stopped {
			s.cond.Wait()
		}
		if s.depth() == 0 && s.stopped {
			s.mu.Unlock()
			return
		}
		t := s.pop()
		if t.closed {
			continue
		}
		wait := time.Since(t.wokeAt)
		t.state = taskRunning
		s.current = t
		s.runs++
		s.mu.Unlock()

		if p.OnWait != nil {
			p.OnWait(int64(wait))
		}
		start := time.Now()
		t.fn()
		if p.OnRun != nil {
			p.OnRun(int64(time.Since(start)))
		}

		s.mu.Lock()
		s.current = nil
		if t.state == taskRunningQueued {
			// Woken mid-run: back of the line, so shard siblings get
			// their turn first (fairness under continuous damage).
			t.state = taskQueued
			s.push(t)
		} else {
			t.state = taskIdle
		}
		s.cond.Broadcast()
	}
}

// ShardStats is a snapshot of one run shard.
type ShardStats struct {
	Wakes    int64 // Wake calls accepted (coalesced ones included)
	Runs     int64 // callback invocations
	Tasks    int64 // live (non-closed) tasks pinned here
	Depth    int64 // queued right now
	MaxDepth int64 // high-watermark queue depth
}

// PoolStats aggregates all shards plus the per-shard breakdown.
type PoolStats struct {
	Wakes, Runs, Tasks, Depth, MaxDepth int64
	Shards                              []ShardStats
}

// Stats snapshots the pool.
func (p *Pool) Stats() PoolStats {
	var ps PoolStats
	ps.Shards = make([]ShardStats, len(p.shards))
	for i, s := range p.shards {
		s.mu.Lock()
		st := ShardStats{
			Wakes: s.wakes, Runs: s.runs, Tasks: s.tasks,
			Depth: s.depth(), MaxDepth: s.maxDepth,
		}
		s.mu.Unlock()
		ps.Shards[i] = st
		ps.Wakes += st.Wakes
		ps.Runs += st.Runs
		ps.Tasks += st.Tasks
		ps.Depth += st.Depth
		if st.MaxDepth > ps.MaxDepth {
			ps.MaxDepth = st.MaxDepth
		}
	}
	return ps
}
