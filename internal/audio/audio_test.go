package audio

import (
	"sync"
	"testing"
)

func TestStreamTimestamps(t *testing.T) {
	d := NewDriver()
	var got [][2]uint64 // pts, bytes
	d.Attach(func(pts uint64, pcm []byte) {
		got = append(got, [2]uint64{pts, uint64(len(pcm))})
	})
	s := d.OpenStream(CD)
	chunk := make([]byte, CD.BytesPerSecond()/10) // 100ms
	for i := 0; i < 3; i++ {
		if _, err := s.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 3 {
		t.Fatalf("%d chunks delivered", len(got))
	}
	// 100ms chunks: timestamps at 0, 100000, 200000 µs.
	for i, g := range got {
		want := uint64(i) * 100000
		if diff := int64(g[0]) - int64(want); diff < -50 || diff > 50 {
			t.Errorf("chunk %d pts %d, want ~%d", i, g[0], want)
		}
	}
}

func TestUnalignedWriteRejected(t *testing.T) {
	d := NewDriver()
	s := d.OpenStream(CD)
	if _, err := s.Write(make([]byte, 3)); err == nil {
		t.Fatal("partial frame accepted")
	}
}

func TestClosedStream(t *testing.T) {
	d := NewDriver()
	s := d.OpenStream(CD)
	s.Close()
	if _, err := s.Write(make([]byte, 4)); err != ErrClosed {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func TestMultiplexing(t *testing.T) {
	// Multiple streams (applications) and multiple consumers (clients):
	// every consumer sees every stream's data (§7: the driver
	// multiplexes across THINC users).
	d := NewDriver()
	var mu sync.Mutex
	counts := make([]int, 2)
	for i := 0; i < 2; i++ {
		i := i
		d.Attach(func(uint64, []byte) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
	}
	s1 := d.OpenStream(CD)
	s2 := d.OpenStream(Format{SampleRate: 22050, Channels: 1, Bits: 16})
	s1.Write(make([]byte, 8))
	s2.Write(make([]byte, 8))
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("consumer counts %v, want [2 2]", counts)
	}
}

func TestDetach(t *testing.T) {
	d := NewDriver()
	n := 0
	detach := d.Attach(func(uint64, []byte) { n++ })
	s := d.OpenStream(CD)
	s.Write(make([]byte, 4))
	detach()
	s.Write(make([]byte, 4))
	if n != 1 {
		t.Fatalf("detached consumer still called: %d", n)
	}
}

func TestDefaultFormatFallback(t *testing.T) {
	d := NewDriver()
	s := d.OpenStream(Format{})
	if s.Format() != CD {
		t.Fatal("invalid format should fall back to CD")
	}
}

func TestCheckSync(t *testing.T) {
	// Audio and video delivered with identical delay: zero skew.
	audio := [][2]uint64{{0, 5000}, {100000, 105000}}
	video := [][2]uint64{{0, 5000}, {41666, 46666}, {83333, 88333}, {125000, 130000}}
	rep := CheckSync(audio, video)
	if rep.Samples != 2 || rep.MaxSkewUS != 0 {
		t.Fatalf("report %+v, want 2 samples zero skew", rep)
	}
	// Audio delayed 40ms more than video: 40ms skew.
	audio = [][2]uint64{{100000, 145000}}
	rep = CheckSync(audio, video)
	if rep.MaxSkewUS != 40000 {
		t.Fatalf("skew %d, want 40000", rep.MaxSkewUS)
	}
	if CheckSync(audio, nil).Samples != 0 {
		t.Fatal("no video should yield no samples")
	}
}

func TestBytesPerSecond(t *testing.T) {
	if CD.BytesPerSecond() != 176400 {
		t.Fatalf("CD rate %d", CD.BytesPerSecond())
	}
}
