// Package audio implements THINC's virtual audio driver (§4.2, §7): an
// ALSA-like device interception point. Applications open a PCM stream
// and write samples; the driver timestamps each chunk against the
// stream clock and hands it to the per-client consumer, which sends it
// over the display connection so audio and video share one timeline.
package audio

import (
	"errors"
	"sync"
)

// Format describes a PCM stream.
type Format struct {
	SampleRate int // Hz
	Channels   int
	Bits       int // per sample (16 in the prototype)
}

// CD is the prototype's fixed format: 44.1 kHz 16-bit stereo.
var CD = Format{SampleRate: 44100, Channels: 2, Bits: 16}

// BytesPerSecond returns the stream's data rate.
func (f Format) BytesPerSecond() int {
	return f.SampleRate * f.Channels * f.Bits / 8
}

// frameBytes is the size of one sample across all channels.
func (f Format) frameBytes() int { return f.Channels * f.Bits / 8 }

// Consumer receives timestamped PCM chunks (the per-client daemon that
// is "automatically signaled as audio data becomes available", §7).
type Consumer func(ptsUS uint64, pcm []byte)

// Driver is the virtual audio device: it multiplexes streams from
// multiple applications to the attached consumers.
type Driver struct {
	mu        sync.Mutex
	consumers []Consumer
	nextID    int
}

// NewDriver returns an empty virtual audio device.
func NewDriver() *Driver { return &Driver{} }

// Attach registers a per-client consumer and returns a detach func.
func (d *Driver) Attach(c Consumer) (detach func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.consumers = append(d.consumers, c)
	idx := len(d.consumers) - 1
	return func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		if idx < len(d.consumers) {
			d.consumers[idx] = nil
		}
	}
}

func (d *Driver) deliver(pts uint64, pcm []byte) {
	d.mu.Lock()
	consumers := append([]Consumer(nil), d.consumers...)
	d.mu.Unlock()
	for _, c := range consumers {
		if c != nil {
			c(pts, pcm)
		}
	}
}

// Stream is one application playback stream. Writes are timestamped by
// sample position: pts = samplesWritten / rate, so delivery preserves
// the synchronization the application produced (§4.2).
type Stream struct {
	d       *Driver
	format  Format
	mu      sync.Mutex
	samples int64
	closed  bool
}

// ErrClosed is returned for writes to a closed stream.
var ErrClosed = errors.New("audio: stream closed")

// OpenStream starts a playback stream in the given format.
func (d *Driver) OpenStream(f Format) *Stream {
	if f.SampleRate <= 0 || f.Channels <= 0 || f.Bits <= 0 {
		f = CD
	}
	return &Stream{d: d, format: f}
}

// Format returns the stream's format.
func (s *Stream) Format() Format { return s.format }

// PTS returns the presentation timestamp (µs) of the next sample.
func (s *Stream) PTS() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pts()
}

func (s *Stream) pts() uint64 {
	return uint64(s.samples * 1e6 / int64(s.format.SampleRate))
}

// Write plays PCM bytes (whole frames; a trailing partial frame is an
// error). The chunk is stamped with the stream position of its first
// sample and handed to every consumer.
func (s *Stream) Write(pcm []byte) (int, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	fb := s.format.frameBytes()
	if len(pcm)%fb != 0 {
		s.mu.Unlock()
		return 0, errors.New("audio: write not frame-aligned")
	}
	pts := s.pts()
	s.samples += int64(len(pcm) / fb)
	s.mu.Unlock()

	s.d.deliver(pts, pcm)
	return len(pcm), nil
}

// Close ends the stream.
func (s *Stream) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// SyncReport measures audio/video synchronization from delivery logs:
// for each audio chunk, the skew against the video frame whose
// presentation interval contains it.
type SyncReport struct {
	MaxSkewUS int64
	Samples   int
}

// CheckSync compares audio chunk timestamps with video frame
// timestamps; both slices are (pts, deliveredAt) pairs in µs. Skew is
// the difference between delivery delay of audio and of the nearest
// video frame — the quantity THINC's shared timestamping bounds.
func CheckSync(audio, video [][2]uint64) SyncReport {
	var rep SyncReport
	for _, a := range audio {
		var best int64 = -1
		var bestDelay int64
		for _, v := range video {
			d := int64(a[0]) - int64(v[0])
			if d < 0 {
				d = -d
			}
			if best < 0 || d < best {
				best = d
				bestDelay = int64(v[1]) - int64(v[0])
			}
		}
		if best < 0 {
			continue
		}
		aDelay := int64(a[1]) - int64(a[0])
		skew := aDelay - bestDelay
		if skew < 0 {
			skew = -skew
		}
		if skew > rep.MaxSkewUS {
			rep.MaxSkewUS = skew
		}
		rep.Samples++
	}
	return rep
}
