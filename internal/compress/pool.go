package compress

import (
	"image/png"
	"sync"
	"sync/atomic"
)

// Encoder scratch pooling. RAW codec encodes are the hottest producer
// of garbage in the delivery pipeline: every damaged region becomes a
// freshly allocated payload slice. The pools below let the encode path
// reuse payload buffers, zlib writer state, and PNG encoder buffers
// across updates.
//
// Ownership rule: a slice from GetScratch is owned by the caller until
// it is handed back with PutScratch. Payloads that become message data
// (wire.Raw.Data) are returned by the delivery layer once the transport
// write completes (core.RecycleMessages); payloads that never reach the
// wire are returned by whoever dropped them.

// maxPooledScratch caps the capacity a returned scratch may retain.
const maxPooledScratch = 1 << 20

var scratchPool = sync.Pool{
	New: func() any {
		scratchStats.misses.Add(1)
		b := make([]byte, 0, 4096)
		return &b
	},
}

var scratchStats struct {
	gets   atomic.Int64
	misses atomic.Int64
	puts   atomic.Int64
}

// GetScratch borrows an empty payload scratch buffer from the pool.
func GetScratch() []byte {
	scratchStats.gets.Add(1)
	bp := scratchPool.Get().(*[]byte)
	b := (*bp)[:0]
	*bp = nil
	ptrPool.Put(bp)
	return b
}

// ptrPool recycles the *[]byte boxes themselves so Get/Put cycles do
// not allocate a fresh header each time.
var ptrPool = sync.Pool{New: func() any { return new([]byte) }}

// PutScratch returns a buffer obtained from GetScratch (possibly grown
// by EncodeAppend). The caller must not touch the slice afterwards.
func PutScratch(b []byte) {
	if b == nil || cap(b) > maxPooledScratch {
		return
	}
	scratchStats.puts.Add(1)
	bp := ptrPool.Get().(*[]byte)
	*bp = b[:0]
	scratchPool.Put(bp)
}

// ScratchStats reports codec scratch pool activity since process
// start: Gets counts GetScratch calls, Misses the subset that had to
// allocate, Puts the buffers handed back.
type ScratchStats struct {
	Gets   int64 `json:"gets"`
	Misses int64 `json:"misses"`
	Puts   int64 `json:"puts"`
}

// PoolStats returns the current codec scratch pool counters.
func PoolStats() ScratchStats {
	return ScratchStats{
		Gets:   scratchStats.gets.Load(),
		Misses: scratchStats.misses.Load(),
		Puts:   scratchStats.puts.Load(),
	}
}

// sliceWriter appends everything written to it onto a byte slice —
// the io.Writer adapter for pooled zlib/PNG encoder state.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// zlibWriters recycles zlib.Writer state (the deflate window alone is
// tens of kilobytes) across encodes via Reset.
var zlibWriters sync.Pool

// pngBuffers implements png.EncoderBufferPool so repeated PNG encodes
// reuse the encoder's internal row buffers.
var pngBuffers png.EncoderBufferPool = &pngBufferPool{}

type pngBufferPool struct{ p sync.Pool }

func (p *pngBufferPool) Get() *png.EncoderBuffer {
	b, _ := p.p.Get().(*png.EncoderBuffer)
	return b
}

func (p *pngBufferPool) Put(b *png.EncoderBuffer) { p.p.Put(b) }
