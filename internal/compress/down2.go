package compress

import (
	"thinc/internal/pixel"
	"thinc/internal/resample"
)

// CodecDown2 is the degradation-ladder codec (overload rung 2): the
// block is Fant-downscaled to half resolution per axis on the server —
// the §6 resampler reused as a bandwidth valve — then run-length
// encoded, cutting the pre-compression payload to roughly a quarter.
// Decoding upscales back to the block geometry with nearest-neighbor,
// so the client applies it exactly like any other RAW payload. It is
// lossy: sessions leave rung 2 through a full refresh, which repairs
// the screen to lossless content.

// down2Dims returns the reduced geometry for a w x h block. Each axis
// rounds up so a 1-pixel dimension survives.
func down2Dims(w, h int) (int, int) {
	return (w + 1) / 2, (h + 1) / 2
}

func appendDown2(dst []byte, pix []pixel.ARGB, w, h int) []byte {
	dw, dh := down2Dims(w, h)
	if dw == w && dh == h {
		// Nothing to shrink (1x1); straight RLE keeps the payload valid.
		return appendRLE(dst, pix)
	}
	small := resample.Fant(pix, w, w, h, dw, dh)
	return appendRLE(dst, small)
}

func decodeDown2(data []byte, w, h int) ([]pixel.ARGB, error) {
	dw, dh := down2Dims(w, h)
	small, err := decodeRLE(data, dw*dh)
	if err != nil {
		return nil, err
	}
	if dw == w && dh == h {
		return small, nil
	}
	return resample.Nearest(small, dw, dw, dh, w, h), nil
}
