// Package compress provides the payload encoders used on the wire. THINC
// compresses only RAW pixel updates (every other command is already a
// compact semantic encoding); the prototype used PNG for that purpose
// (§7), with a cheap RLE as the low-CPU alternative. A zlib codec is
// provided for the baseline systems (VNC/NX-class) that compress
// everything.
package compress

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"errors"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"

	"thinc/internal/pixel"
)

// Codec identifies a RAW payload encoding.
type Codec uint8

// Supported codecs.
const (
	CodecNone Codec = iota // raw ARGB32, no compression
	CodecRLE               // run-length encoding of ARGB32 pixels
	CodecPNG               // PNG (the prototype's choice)
	CodecZlib              // zlib over ARGB32 (baseline systems)
)

func (c Codec) String() string {
	switch c {
	case CodecNone:
		return "none"
	case CodecRLE:
		return "rle"
	case CodecPNG:
		return "png"
	case CodecZlib:
		return "zlib"
	default:
		return "unknown"
	}
}

// ErrCorrupt is returned when a payload cannot be decoded.
var ErrCorrupt = errors.New("compress: corrupt payload")

// Encode compresses a w x h block of pixels with the chosen codec.
func Encode(c Codec, pix []pixel.ARGB, w, h int) ([]byte, error) {
	if len(pix) != w*h {
		return nil, fmt.Errorf("compress: %dx%d block with %d pixels", w, h, len(pix))
	}
	switch c {
	case CodecNone:
		return encodeRawBytes(pix), nil
	case CodecRLE:
		return encodeRLE(pix), nil
	case CodecPNG:
		return encodePNG(pix, w, h)
	case CodecZlib:
		return encodeZlib(encodeRawBytes(pix))
	default:
		return nil, fmt.Errorf("compress: unknown codec %d", c)
	}
}

// Decode reverses Encode for a block known to be w x h.
func Decode(c Codec, data []byte, w, h int) ([]pixel.ARGB, error) {
	switch c {
	case CodecNone:
		return decodeRawBytes(data, w*h)
	case CodecRLE:
		return decodeRLE(data, w*h)
	case CodecPNG:
		return decodePNG(data, w, h)
	case CodecZlib:
		raw, err := decodeZlib(data)
		if err != nil {
			return nil, err
		}
		return decodeRawBytes(raw, w*h)
	default:
		return nil, fmt.Errorf("compress: unknown codec %d", c)
	}
}

func encodeRawBytes(pix []pixel.ARGB) []byte {
	buf := make([]byte, len(pix)*4)
	for i, p := range pix {
		binary.BigEndian.PutUint32(buf[i*4:], uint32(p))
	}
	return buf
}

func decodeRawBytes(data []byte, n int) ([]pixel.ARGB, error) {
	if len(data) != n*4 {
		return nil, ErrCorrupt
	}
	pix := make([]pixel.ARGB, n)
	for i := range pix {
		pix[i] = pixel.ARGB(binary.BigEndian.Uint32(data[i*4:]))
	}
	return pix, nil
}

// encodeRLE emits (count-1 byte, ARGB32) pairs; runs cap at 256.
func encodeRLE(pix []pixel.ARGB) []byte {
	var out []byte
	for i := 0; i < len(pix); {
		run := 1
		for i+run < len(pix) && run < 256 && pix[i+run] == pix[i] {
			run++
		}
		out = append(out, byte(run-1),
			byte(pix[i]>>24), byte(pix[i]>>16), byte(pix[i]>>8), byte(pix[i]))
		i += run
	}
	return out
}

func decodeRLE(data []byte, n int) ([]pixel.ARGB, error) {
	if len(data)%5 != 0 {
		return nil, ErrCorrupt
	}
	pix := make([]pixel.ARGB, 0, n)
	for o := 0; o < len(data); o += 5 {
		run := int(data[o]) + 1
		p := pixel.ARGB(binary.BigEndian.Uint32(data[o+1:]))
		for k := 0; k < run; k++ {
			pix = append(pix, p)
		}
	}
	if len(pix) != n {
		return nil, ErrCorrupt
	}
	return pix, nil
}

func encodePNG(pix []pixel.ARGB, w, h int) ([]byte, error) {
	img := image.NewNRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			p := pix[y*w+x]
			img.SetNRGBA(x, y, color.NRGBA{R: p.R(), G: p.G(), B: p.B(), A: p.A()})
		}
	}
	var buf bytes.Buffer
	enc := png.Encoder{CompressionLevel: png.BestSpeed}
	if err := enc.Encode(&buf, img); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodePNG(data []byte, w, h int) ([]pixel.ARGB, error) {
	img, err := png.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	b := img.Bounds()
	if b.Dx() != w || b.Dy() != h {
		return nil, ErrCorrupt
	}
	pix := make([]pixel.ARGB, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := color.NRGBAModel.Convert(img.At(b.Min.X+x, b.Min.Y+y)).(color.NRGBA)
			pix[y*w+x] = pixel.PackARGB(c.A, c.R, c.G, c.B)
		}
	}
	return pix, nil
}

func encodeZlib(raw []byte) ([]byte, error) {
	var buf bytes.Buffer
	zw, err := zlib.NewWriterLevel(&buf, zlib.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(raw); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeZlib(data []byte) ([]byte, error) {
	zr, err := zlib.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	defer zr.Close()
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return raw, nil
}
