// Package compress provides the payload encoders used on the wire. THINC
// compresses only RAW pixel updates (every other command is already a
// compact semantic encoding); the prototype used PNG for that purpose
// (§7), with a cheap RLE as the low-CPU alternative. A zlib codec is
// provided for the baseline systems (VNC/NX-class) that compress
// everything.
package compress

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"errors"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"

	"thinc/internal/pixel"
)

// Codec identifies a RAW payload encoding.
type Codec uint8

// Supported codecs.
const (
	CodecNone  Codec = iota // raw ARGB32, no compression
	CodecRLE                // run-length encoding of ARGB32 pixels
	CodecPNG                // PNG (the prototype's choice)
	CodecZlib               // zlib over ARGB32 (baseline systems)
	CodecDown2              // lossy half-resolution downscale + RLE (overload rung 2)
)

func (c Codec) String() string {
	switch c {
	case CodecNone:
		return "none"
	case CodecRLE:
		return "rle"
	case CodecPNG:
		return "png"
	case CodecZlib:
		return "zlib"
	case CodecDown2:
		return "down2"
	default:
		return "unknown"
	}
}

// ErrCorrupt is returned when a payload cannot be decoded.
var ErrCorrupt = errors.New("compress: corrupt payload")

// Encode compresses a w x h block of pixels with the chosen codec into
// a fresh buffer. Hot paths should use EncodeAppend with a pooled
// scratch buffer from GetScratch.
func Encode(c Codec, pix []pixel.ARGB, w, h int) ([]byte, error) {
	return EncodeAppend(c, nil, pix, w, h)
}

// EncodeAppend compresses a w x h block of pixels with the chosen
// codec, appending the payload to dst (which may be nil or a pooled
// scratch from GetScratch) and returning the extended slice. The
// encoders reuse pooled zlib/PNG state, so steady-state encoding
// allocates only when the payload outgrows its buffer.
func EncodeAppend(c Codec, dst []byte, pix []pixel.ARGB, w, h int) ([]byte, error) {
	if len(pix) != w*h {
		return dst, fmt.Errorf("compress: %dx%d block with %d pixels", w, h, len(pix))
	}
	switch c {
	case CodecNone:
		return appendRawBytes(dst, pix), nil
	case CodecRLE:
		return appendRLE(dst, pix), nil
	case CodecPNG:
		return appendPNG(dst, pix, w, h)
	case CodecZlib:
		return appendZlib(dst, pix)
	case CodecDown2:
		return appendDown2(dst, pix, w, h), nil
	default:
		return dst, fmt.Errorf("compress: unknown codec %d", c)
	}
}

// Decode reverses Encode for a block known to be w x h.
func Decode(c Codec, data []byte, w, h int) ([]pixel.ARGB, error) {
	switch c {
	case CodecNone:
		return decodeRawBytes(data, w*h)
	case CodecRLE:
		return decodeRLE(data, w*h)
	case CodecPNG:
		return decodePNG(data, w, h)
	case CodecZlib:
		raw, err := decodeZlib(data)
		if err != nil {
			return nil, err
		}
		return decodeRawBytes(raw, w*h)
	case CodecDown2:
		return decodeDown2(data, w, h)
	default:
		return nil, fmt.Errorf("compress: unknown codec %d", c)
	}
}

func appendRawBytes(dst []byte, pix []pixel.ARGB) []byte {
	off := len(dst)
	dst = grow(dst, len(pix)*4)
	buf := dst[off:]
	for i, p := range pix {
		binary.BigEndian.PutUint32(buf[i*4:], uint32(p))
	}
	return dst
}

// grow extends dst by n bytes, reallocating at most once.
func grow(dst []byte, n int) []byte {
	if need := len(dst) + n; cap(dst) < need {
		dst = append(make([]byte, 0, need), dst...)
	}
	return dst[:len(dst)+n]
}

func decodeRawBytes(data []byte, n int) ([]pixel.ARGB, error) {
	if len(data) != n*4 {
		return nil, ErrCorrupt
	}
	pix := make([]pixel.ARGB, n)
	for i := range pix {
		pix[i] = pixel.ARGB(binary.BigEndian.Uint32(data[i*4:]))
	}
	return pix, nil
}

// appendRLE emits (count-1 byte, ARGB32) pairs; runs cap at 256.
func appendRLE(out []byte, pix []pixel.ARGB) []byte {
	for i := 0; i < len(pix); {
		run := 1
		for i+run < len(pix) && run < 256 && pix[i+run] == pix[i] {
			run++
		}
		out = append(out, byte(run-1),
			byte(pix[i]>>24), byte(pix[i]>>16), byte(pix[i]>>8), byte(pix[i]))
		i += run
	}
	return out
}

func decodeRLE(data []byte, n int) ([]pixel.ARGB, error) {
	if len(data)%5 != 0 {
		return nil, ErrCorrupt
	}
	pix := make([]pixel.ARGB, 0, n)
	for o := 0; o < len(data); o += 5 {
		run := int(data[o]) + 1
		p := pixel.ARGB(binary.BigEndian.Uint32(data[o+1:]))
		for k := 0; k < run; k++ {
			pix = append(pix, p)
		}
	}
	if len(pix) != n {
		return nil, ErrCorrupt
	}
	return pix, nil
}

func appendPNG(dst []byte, pix []pixel.ARGB, w, h int) ([]byte, error) {
	raw := GetScratch()
	raw = grow(raw, w*h*4)
	for i, p := range pix {
		raw[i*4+0] = p.R()
		raw[i*4+1] = p.G()
		raw[i*4+2] = p.B()
		raw[i*4+3] = p.A()
	}
	img := &image.NRGBA{Pix: raw, Stride: w * 4, Rect: image.Rect(0, 0, w, h)}
	sw := sliceWriter{b: dst}
	enc := png.Encoder{CompressionLevel: png.BestSpeed, BufferPool: pngBuffers}
	err := enc.Encode(&sw, img)
	PutScratch(raw)
	if err != nil {
		return dst, err
	}
	return sw.b, nil
}

func decodePNG(data []byte, w, h int) ([]pixel.ARGB, error) {
	img, err := png.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	b := img.Bounds()
	if b.Dx() != w || b.Dy() != h {
		return nil, ErrCorrupt
	}
	pix := make([]pixel.ARGB, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := color.NRGBAModel.Convert(img.At(b.Min.X+x, b.Min.Y+y)).(color.NRGBA)
			pix[y*w+x] = pixel.PackARGB(c.A, c.R, c.G, c.B)
		}
	}
	return pix, nil
}

func appendZlib(dst []byte, pix []pixel.ARGB) ([]byte, error) {
	raw := appendRawBytes(GetScratch(), pix)
	out, err := appendZlibBytes(dst, raw)
	PutScratch(raw)
	return out, err
}

func appendZlibBytes(dst, raw []byte) ([]byte, error) {
	sw := &sliceWriter{b: dst}
	zw, _ := zlibWriters.Get().(*zlib.Writer)
	if zw == nil {
		var err error
		zw, err = zlib.NewWriterLevel(sw, zlib.BestSpeed)
		if err != nil {
			return dst, err
		}
	} else {
		zw.Reset(sw)
	}
	if _, err := zw.Write(raw); err != nil {
		return dst, err
	}
	if err := zw.Close(); err != nil {
		return dst, err
	}
	zlibWriters.Put(zw)
	return sw.b, nil
}

func decodeZlib(data []byte) ([]byte, error) {
	zr, err := zlib.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	defer zr.Close()
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return raw, nil
}
