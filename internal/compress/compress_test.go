package compress

import (
	"math/rand"
	"testing"

	"thinc/internal/pixel"
)

func randomBlock(rnd *rand.Rand, w, h int) []pixel.ARGB {
	pix := make([]pixel.ARGB, w*h)
	for i := range pix {
		pix[i] = pixel.RGB(uint8(rnd.Intn(256)), uint8(rnd.Intn(256)), uint8(rnd.Intn(256)))
	}
	return pix
}

func flatBlock(w, h int, c pixel.ARGB) []pixel.ARGB {
	pix := make([]pixel.ARGB, w*h)
	for i := range pix {
		pix[i] = c
	}
	return pix
}

func TestRoundTripAllCodecs(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	blocks := map[string][]pixel.ARGB{
		"random": randomBlock(rnd, 13, 9),
		"flat":   flatBlock(13, 9, pixel.RGB(200, 100, 50)),
	}
	for name, pix := range blocks {
		for _, c := range []Codec{CodecNone, CodecRLE, CodecPNG, CodecZlib} {
			data, err := Encode(c, pix, 13, 9)
			if err != nil {
				t.Fatalf("%s/%v encode: %v", name, c, err)
			}
			got, err := Decode(c, data, 13, 9)
			if err != nil {
				t.Fatalf("%s/%v decode: %v", name, c, err)
			}
			for i := range pix {
				if got[i] != pix[i] {
					t.Fatalf("%s/%v pixel %d: %08x != %08x", name, c, i, got[i], pix[i])
				}
			}
		}
	}
}

func TestAlphaSurvivesPNG(t *testing.T) {
	pix := []pixel.ARGB{pixel.PackARGB(128, 255, 0, 0), pixel.PackARGB(0, 0, 0, 0)}
	data, err := Encode(CodecPNG, pix, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(CodecPNG, data, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].A() != 128 || got[1].A() != 0 {
		t.Errorf("alpha lost: %08x %08x", got[0], got[1])
	}
}

func TestFlatContentCompressesWell(t *testing.T) {
	pix := flatBlock(64, 64, pixel.RGB(255, 255, 255))
	rawLen := 64 * 64 * 4
	for _, c := range []Codec{CodecRLE, CodecPNG, CodecZlib} {
		data, err := Encode(c, pix, 64, 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) >= rawLen/4 {
			t.Errorf("%v: flat block compressed to %d of %d", c, len(data), rawLen)
		}
	}
}

func TestSizeMismatchRejected(t *testing.T) {
	if _, err := Encode(CodecNone, make([]pixel.ARGB, 5), 2, 2); err == nil {
		t.Error("encode with wrong pixel count should fail")
	}
}

func TestCorruptPayloadRejected(t *testing.T) {
	pix := flatBlock(4, 4, pixel.RGB(1, 2, 3))
	for _, c := range []Codec{CodecNone, CodecRLE, CodecPNG, CodecZlib} {
		data, err := Encode(c, pix, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		// Truncate badly.
		if _, err := Decode(c, data[:len(data)/3], 4, 4); err == nil {
			t.Errorf("%v: truncated payload decoded without error", c)
		}
	}
	// Wrong geometry for PNG.
	data, _ := Encode(CodecPNG, pix, 4, 4)
	if _, err := Decode(CodecPNG, data, 5, 5); err == nil {
		t.Error("PNG geometry mismatch not detected")
	}
}

func TestUnknownCodec(t *testing.T) {
	if _, err := Encode(Codec(99), nil, 0, 0); err == nil {
		t.Error("unknown codec encode should fail")
	}
	if _, err := Decode(Codec(99), nil, 0, 0); err == nil {
		t.Error("unknown codec decode should fail")
	}
}

func TestCodecNames(t *testing.T) {
	for _, c := range []Codec{CodecNone, CodecRLE, CodecPNG, CodecZlib} {
		if c.String() == "unknown" {
			t.Errorf("codec %d unnamed", c)
		}
	}
	if Codec(99).String() != "unknown" {
		t.Error("bogus codec should be unknown")
	}
}

func TestRLELongRuns(t *testing.T) {
	// Runs longer than 256 must split correctly.
	pix := flatBlock(300, 2, pixel.RGB(7, 7, 7))
	data, err := Encode(CodecRLE, pix, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(CodecRLE, data, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 600 || got[599] != pixel.RGB(7, 7, 7) {
		t.Error("long run round trip failed")
	}
}

func BenchmarkEncodePNGPhotoLike(b *testing.B) {
	rnd := rand.New(rand.NewSource(1))
	pix := randomBlock(rnd, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(CodecPNG, pix, 256, 256); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeRLEFlat(b *testing.B) {
	pix := flatBlock(256, 256, pixel.RGB(1, 2, 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(CodecRLE, pix, 256, 256); err != nil {
			b.Fatal(err)
		}
	}
}
