// Package sim provides a small discrete-event simulation engine with a
// virtual clock. The benchmark harness runs every thin-client system
// under test inside this engine, which replaces the paper's hardware
// testbed and NISTNet network emulator: events model command
// generation, link transmission, and client processing, and the virtual
// clock yields deterministic latencies independent of wall-clock time.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a virtual timestamp in microseconds.
type Time int64

// Common durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * 1000
)

// Seconds renders the time in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis renders the time in milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	return fmt.Sprintf("%.3fms", t.Millis())
}

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // FIFO among same-time events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event executor. It is single-threaded: events
// run sequentially in virtual-time order, and event handlers may
// schedule further events.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap

	// Processed counts executed events (observability for tests).
	Processed int
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn at absolute time t; times in the past run "now".
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d after the current time.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Step executes the next event; it reports false when none remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.Processed++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the
// clock to exactly t.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}
