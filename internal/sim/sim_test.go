package sim

import "testing"

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("final time %v", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.After(10, func() {
		hits = append(hits, e.Now())
		e.After(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("hits %v", hits)
	}
}

func TestPastEventsRunNow(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		e.At(50, func() { // in the past: runs at current time
			if e.Now() != 100 {
				t.Errorf("past event ran at %v", e.Now())
			}
		})
	})
	e.Run()
	if e.Processed != 2 {
		t.Fatalf("processed %d", e.Processed)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.At(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Fatalf("ran %d, want 2", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("now %v", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d", e.Pending())
	}
	// RunUntil with nothing due still advances the clock.
	e.RunUntil(25)
	if e.Now() != 25 || ran != 2 {
		t.Fatal("clock did not advance cleanly")
	}
}

func TestTimeUnits(t *testing.T) {
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond {
		t.Fatal("unit relationships wrong")
	}
	if (1500 * Millisecond).Seconds() != 1.5 {
		t.Fatal("Seconds conversion wrong")
	}
	if (2500 * Microsecond).Millis() != 2.5 {
		t.Fatal("Millis conversion wrong")
	}
}
