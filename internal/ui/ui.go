// Package ui is a minimal widget toolkit on top of the window system —
// the "application" layer of the reproduction's testbed. It exists so
// interactive demos and tests exercise the paths the paper's
// interactivity story depends on: button feedback drawn in direct
// response to input (the real-time queue's workload, §5), rendered
// through offscreen double buffering (§4.1).
package ui

import (
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/xserver"
)

// Widget is anything a Panel lays out and draws.
type Widget interface {
	// Bounds returns the widget's rectangle in panel coordinates.
	Bounds() geom.Rect
	// Draw renders the widget onto the target drawable.
	Draw(d *xserver.Display, t xserver.Drawable)
}

// Label is static text.
type Label struct {
	At    geom.Point
	Text  string
	Color pixel.ARGB
}

// Bounds implements Widget.
func (l *Label) Bounds() geom.Rect {
	return geom.XYWH(l.At.X, l.At.Y, len(l.Text)*xserver.GlyphW, xserver.GlyphH)
}

// Draw implements Widget.
func (l *Label) Draw(d *xserver.Display, t xserver.Drawable) {
	d.DrawText(t, &xserver.GC{Fg: l.Color}, l.At.X, l.At.Y, l.Text)
}

// Button is a clickable rectangle with a caption and pressed feedback.
type Button struct {
	Rect    geom.Rect
	Text    string
	Face    pixel.ARGB
	Ink     pixel.ARGB
	OnClick func()

	pressed bool
}

// Bounds implements Widget.
func (b *Button) Bounds() geom.Rect { return b.Rect }

// Pressed reports the visual pressed state.
func (b *Button) Pressed() bool { return b.pressed }

// Draw implements Widget.
func (b *Button) Draw(d *xserver.Display, t xserver.Drawable) {
	face := b.Face
	if face == 0 {
		face = pixel.RGB(210, 210, 220)
	}
	if b.pressed {
		face = pixel.RGB(face.R()/2+40, face.G()/2+40, face.B()/2+60)
	}
	d.FillRect(t, &xserver.GC{Fg: face}, b.Rect)
	// Bevel.
	edge := pixel.RGB(90, 90, 110)
	d.FillRect(t, &xserver.GC{Fg: edge}, geom.Rect{X0: b.Rect.X0, Y0: b.Rect.Y1 - 1, X1: b.Rect.X1, Y1: b.Rect.Y1})
	d.FillRect(t, &xserver.GC{Fg: edge}, geom.Rect{X0: b.Rect.X1 - 1, Y0: b.Rect.Y0, X1: b.Rect.X1, Y1: b.Rect.Y1})
	ink := b.Ink
	if ink == 0 {
		ink = pixel.RGB(10, 10, 10)
	}
	tx := b.Rect.X0 + (b.Rect.W()-len(b.Text)*xserver.GlyphW)/2
	ty := b.Rect.Y0 + (b.Rect.H()-xserver.GlyphH)/2
	d.DrawText(t, &xserver.GC{Fg: ink}, tx, ty, b.Text)
}

// Gauge is a horizontal bar showing a 0..1 value.
type Gauge struct {
	Rect  geom.Rect
	Value float64
	Fill  pixel.ARGB
}

// Bounds implements Widget.
func (g *Gauge) Bounds() geom.Rect { return g.Rect }

// Draw implements Widget.
func (g *Gauge) Draw(d *xserver.Display, t xserver.Drawable) {
	d.FillRect(t, &xserver.GC{Fg: pixel.RGB(60, 60, 70)}, g.Rect)
	v := g.Value
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	w := int(float64(g.Rect.W()) * v)
	fill := g.Fill
	if fill == 0 {
		fill = pixel.RGB(90, 200, 90)
	}
	d.FillRect(t, &xserver.GC{Fg: fill},
		geom.Rect{X0: g.Rect.X0, Y0: g.Rect.Y0, X1: g.Rect.X0 + w, Y1: g.Rect.Y1})
}

// Panel owns widgets and renders them into a window region through an
// offscreen pixmap, the way real toolkits compose their interfaces.
type Panel struct {
	Win        *xserver.Window
	Area       geom.Rect // window-local
	Background pixel.ARGB

	widgets []Widget
}

// Add appends a widget (panel coordinates).
func (p *Panel) Add(w Widget) { p.widgets = append(p.widgets, w) }

// Widgets returns the panel's widgets.
func (p *Panel) Widgets() []Widget { return p.widgets }

// Render draws the whole panel: background and widgets into an
// offscreen pixmap, then one flip onscreen.
func (p *Panel) Render(d *xserver.Display) {
	pm := d.CreatePixmap(p.Area.W(), p.Area.H())
	bg := p.Background
	if bg == 0 {
		bg = pixel.RGB(240, 240, 244)
	}
	d.FillRect(pm, &xserver.GC{Fg: bg}, pm.Bounds())
	for _, w := range p.widgets {
		w.Draw(d, pm)
	}
	d.CopyArea(p.Win, pm, pm.Bounds(), p.Area.Origin())
	d.FreePixmap(pm)
}

// Click dispatches a press at a window-local point: the hit button gets
// pressed feedback (drawn immediately, directly onscreen — the
// interactive update the real-time queue accelerates) and its OnClick
// runs. It reports whether a button was hit.
func (p *Panel) Click(d *xserver.Display, at geom.Point) bool {
	local := at.Sub(p.Area.Origin())
	for _, w := range p.widgets {
		b, ok := w.(*Button)
		if !ok || !local.In(b.Rect) {
			continue
		}
		b.pressed = true
		p.drawWidgetOnscreen(d, b)
		if b.OnClick != nil {
			b.OnClick()
		}
		return true
	}
	return false
}

// Release clears pressed state and redraws released buttons.
func (p *Panel) Release(d *xserver.Display) {
	for _, w := range p.widgets {
		if b, ok := w.(*Button); ok && b.pressed {
			b.pressed = false
			p.drawWidgetOnscreen(d, b)
		}
	}
}

// drawWidgetOnscreen redraws one widget directly into the window (no
// double buffer): small, immediate feedback.
func (p *Panel) drawWidgetOnscreen(d *xserver.Display, w Widget) {
	// Widgets draw in panel coordinates; wrap the window in an offset
	// drawable by drawing into a pixmap sized to the widget then
	// copying — simplest correct path that stays within the public
	// xserver API.
	r := w.Bounds()
	pm := d.CreatePixmap(p.Area.W(), p.Area.H())
	bg := p.Background
	if bg == 0 {
		bg = pixel.RGB(240, 240, 244)
	}
	d.FillRect(pm, &xserver.GC{Fg: bg}, r)
	w.Draw(d, pm)
	d.CopyArea(p.Win, pm, r, p.Area.Origin().Add(r.Origin()))
	d.FreePixmap(pm)
}
