package ui

import (
	"testing"

	"thinc/internal/driver"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/xserver"
)

func setup() (*xserver.Display, *Panel) {
	d := xserver.NewDisplay(200, 150, driver.Nop{})
	win := d.CreateWindow(geom.XYWH(0, 0, 200, 150))
	p := &Panel{Win: win, Area: geom.XYWH(10, 10, 180, 130)}
	return d, p
}

func TestPanelRenderDrawsWidgets(t *testing.T) {
	d, p := setup()
	p.Add(&Label{At: geom.Point{X: 4, Y: 4}, Text: "hi", Color: pixel.RGB(0, 0, 0)})
	btn := &Button{Rect: geom.XYWH(20, 40, 60, 24), Text: "ok"}
	p.Add(btn)
	p.Add(&Gauge{Rect: geom.XYWH(20, 80, 100, 10), Value: 0.5})
	p.Render(d)

	// Panel background visible inside the area, not outside.
	if d.Screen().At(5, 5) == pixel.RGB(240, 240, 244) {
		t.Error("background leaked outside panel area")
	}
	if d.Screen().At(15, 15) != pixel.RGB(240, 240, 244) {
		t.Errorf("panel background missing: %v", d.Screen().At(15, 15))
	}
	// Button face at its panel position (panel offset 10,10).
	if d.Screen().At(10+25, 10+45) != pixel.RGB(210, 210, 220) {
		t.Errorf("button face missing: %v", d.Screen().At(35, 55))
	}
	// Gauge: filled half then empty half.
	if d.Screen().At(10+30, 10+85) != pixel.RGB(90, 200, 90) {
		t.Error("gauge fill missing")
	}
	if d.Screen().At(10+115, 10+85) != pixel.RGB(60, 60, 70) {
		t.Error("gauge trough missing")
	}
}

func TestButtonClickFeedbackAndCallback(t *testing.T) {
	d, p := setup()
	clicked := 0
	btn := &Button{Rect: geom.XYWH(20, 40, 60, 24), Text: "go", OnClick: func() { clicked++ }}
	p.Add(btn)
	p.Render(d)
	face := d.Screen().At(10+25, 10+45)

	// Miss: nothing happens.
	if p.Click(d, geom.Point{X: 5, Y: 5}) {
		t.Error("click outside button reported a hit")
	}
	if clicked != 0 {
		t.Error("missed click fired callback")
	}

	// Hit: pressed state drawn, callback fired.
	if !p.Click(d, geom.Point{X: 10 + 25, Y: 10 + 45}) {
		t.Fatal("click on button missed")
	}
	if clicked != 1 || !btn.Pressed() {
		t.Error("click state wrong")
	}
	if d.Screen().At(10+25, 10+45) == face {
		t.Error("pressed button should look different")
	}

	// Release restores the face.
	p.Release(d)
	if btn.Pressed() {
		t.Error("release did not clear pressed state")
	}
	if d.Screen().At(10+25, 10+45) != face {
		t.Error("released button should restore its face")
	}
}

func TestPanelRenderIsDoubleBuffered(t *testing.T) {
	// Rendering a panel goes through one offscreen pixmap flip: exactly
	// one screen-bound copy per Render.
	d, p := setup()
	p.Add(&Label{At: geom.Point{X: 0, Y: 0}, Text: "x", Color: 1})
	before := d.Stats.Copies
	p.Render(d)
	if d.Stats.Copies != before+1 {
		t.Errorf("Render used %d copies, want exactly 1 flip", d.Stats.Copies-before)
	}
}

func TestGaugeClamps(t *testing.T) {
	d, p := setup()
	g := &Gauge{Rect: geom.XYWH(0, 0, 50, 5), Value: 7}
	p.Add(g)
	p.Render(d)
	if d.Screen().At(10+49, 10+2) != pixel.RGB(90, 200, 90) {
		t.Error("over-range gauge should fill fully")
	}
	g.Value = -3
	p.Render(d)
	if d.Screen().At(10+1, 10+2) == pixel.RGB(90, 200, 90) {
		t.Error("under-range gauge should be empty")
	}
}
