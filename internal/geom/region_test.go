package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func regionModel(g *Region) bitmap {
	var b bitmap
	for _, r := range g.Rects() {
		b.set(r, true)
	}
	return b
}

func checkDisjoint(t *testing.T, g *Region) {
	t.Helper()
	rs := g.Rects()
	for i := range rs {
		if rs[i].Empty() {
			t.Fatalf("region holds empty rect: %v", g)
		}
		for j := i + 1; j < len(rs); j++ {
			if rs[i].Overlaps(rs[j]) {
				t.Fatalf("region rects overlap: %v and %v", rs[i], rs[j])
			}
		}
	}
}

func TestRegionBasics(t *testing.T) {
	var g Region
	if !g.Empty() || g.Area() != 0 {
		t.Fatal("zero region should be empty")
	}
	g.UnionRect(XYWH(0, 0, 10, 10))
	if g.Area() != 100 {
		t.Fatalf("area = %d", g.Area())
	}
	g.UnionRect(XYWH(5, 5, 10, 10)) // overlapping
	if g.Area() != 175 {
		t.Fatalf("overlapped union area = %d, want 175", g.Area())
	}
	checkDisjoint(t, &g)
	if !g.ContainsPoint(Point{12, 12}) || g.ContainsPoint(Point{12, 2}) {
		t.Error("ContainsPoint wrong")
	}
	g.SubtractRect(XYWH(0, 0, 20, 20))
	if !g.Empty() {
		t.Fatalf("should be empty, got %v", g.String())
	}
}

func TestRegionCoalesce(t *testing.T) {
	var g Region
	// Two horizontally abutting rects should coalesce to one.
	g.UnionRect(XYWH(0, 0, 5, 5))
	g.UnionRect(XYWH(5, 0, 5, 5))
	if g.NumRects() != 1 {
		t.Errorf("horizontal coalesce: %d rects (%v)", g.NumRects(), g.String())
	}
	// Vertically abutting with same x-extent.
	g.UnionRect(XYWH(0, 5, 10, 5))
	if g.NumRects() != 1 {
		t.Errorf("vertical coalesce: %d rects (%v)", g.NumRects(), g.String())
	}
	if g.Bounds() != XYWH(0, 0, 10, 10) || g.Area() != 100 {
		t.Errorf("coalesced region wrong: %v", g.String())
	}
}

func TestRegionContainsRect(t *testing.T) {
	g := RegionOf(XYWH(0, 0, 10, 5), XYWH(0, 5, 10, 5))
	if !g.ContainsRect(XYWH(2, 2, 6, 6)) {
		t.Error("rect spanning both bands should be contained")
	}
	if g.ContainsRect(XYWH(8, 8, 5, 5)) {
		t.Error("partially outside rect should not be contained")
	}
	if !g.ContainsRect(Rect{}) {
		t.Error("empty rect always contained")
	}
}

func TestRegionIntersect(t *testing.T) {
	g := RegionOf(XYWH(0, 0, 10, 10))
	h := RegionOf(XYWH(5, 5, 10, 10), XYWH(-5, -5, 7, 7))
	g.Intersect(&h)
	checkDisjoint(t, &g)
	if g.Area() != 25+4 {
		t.Errorf("intersect area = %d, want 29 (%v)", g.Area(), g.String())
	}
}

func TestRegionTranslateEqual(t *testing.T) {
	g := RegionOf(XYWH(0, 0, 4, 4), XYWH(8, 8, 4, 4))
	h := g.Clone()
	h.Translate(3, 3)
	if g.Equal(&h) {
		t.Error("translated region should differ")
	}
	h.Translate(-3, -3)
	if !g.Equal(&h) {
		t.Error("round-trip translate should be equal")
	}
}

// TestRegionAlgebraProperty drives random sequences of region ops and
// compares against the brute-force bitmap model.
func TestRegionAlgebraProperty(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		var g Region
		var m bitmap
		for i := 0; i < 12; i++ {
			r := rectGen(rnd)
			switch rnd.Intn(3) {
			case 0:
				g.UnionRect(r)
				m.set(r, true)
			case 1:
				g.SubtractRect(r)
				m.set(r, false)
			case 2:
				g.IntersectRect(r)
				var keep bitmap
				for y := -4; y < 44; y++ {
					for x := -4; x < 44; x++ {
						if m[y+4][x+4] && (Point{x, y}).In(r) {
							keep[y+4][x+4] = true
						}
					}
				}
				m = keep
			}
			checkDisjoint(t, &g)
		}
		if regionModel(&g) != m {
			t.Logf("region/model mismatch, seed %d", seed)
			return false
		}
		if g.Area() != m.count() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRegionUnionCommutative checks A ∪ B == B ∪ A on random inputs.
func TestRegionUnionCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a := RegionOf(rectGen(rnd), rectGen(rnd), rectGen(rnd))
		b := RegionOf(rectGen(rnd), rectGen(rnd))
		ab := a.Clone()
		ab.Union(&b)
		ba := b.Clone()
		ba.Union(&a)
		return ab.Equal(&ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRegionSubtractIdentity checks (A ∪ B) - B == A - B.
func TestRegionSubtractIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a := RegionOf(rectGen(rnd), rectGen(rnd))
		b := RegionOf(rectGen(rnd), rectGen(rnd))
		u := a.Clone()
		u.Union(&b)
		u.Subtract(&b)
		d := a.Clone()
		d.Subtract(&b)
		return u.Equal(&d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRegionUnionRect(b *testing.B) {
	rnd := rand.New(rand.NewSource(1))
	rects := make([]Rect, 256)
	for i := range rects {
		rects[i] = XYWH(rnd.Intn(1024), rnd.Intn(768), 16+rnd.Intn(64), 16+rnd.Intn(64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var g Region
		for _, r := range rects {
			g.UnionRect(r)
		}
	}
}
