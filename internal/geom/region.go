package geom

import (
	"sort"
	"strings"
)

// Region is a set of pixels represented as a list of disjoint rectangles.
// The zero value is the empty region, ready to use.
//
// The representation invariant — rectangles are non-empty and pairwise
// disjoint — is maintained by all mutating operations. Rectangles are kept
// loosely sorted by (Y0, X0) and adjacent rectangles that tile a band are
// coalesced, keeping the representation compact for the rectilinear shapes
// that dominate display workloads.
type Region struct {
	rects []Rect
}

// RegionOf returns a region covering exactly the given rectangles
// (which may overlap each other).
func RegionOf(rs ...Rect) Region {
	var rg Region
	for _, r := range rs {
		rg.UnionRect(r)
	}
	return rg
}

// Empty reports whether the region covers no pixels.
func (g *Region) Empty() bool { return len(g.rects) == 0 }

// Clear makes the region empty, retaining its storage.
func (g *Region) Clear() { g.rects = g.rects[:0] }

// NumRects returns the number of rectangles in the representation.
func (g *Region) NumRects() int { return len(g.rects) }

// Rects returns the disjoint rectangles covering the region. The returned
// slice is owned by the region and must not be modified.
func (g *Region) Rects() []Rect { return g.rects }

// Clone returns a deep copy of the region.
func (g *Region) Clone() Region {
	return Region{rects: append([]Rect(nil), g.rects...)}
}

// Area returns the number of pixels covered.
func (g *Region) Area() int {
	a := 0
	for _, r := range g.rects {
		a += r.Area()
	}
	return a
}

// Bounds returns the bounding box of the region.
func (g *Region) Bounds() Rect {
	var b Rect
	for _, r := range g.rects {
		b = b.Union(r)
	}
	return b
}

// ContainsPoint reports whether the pixel at p is covered.
func (g *Region) ContainsPoint(p Point) bool {
	for _, r := range g.rects {
		if p.In(r) {
			return true
		}
	}
	return false
}

// OverlapsRect reports whether the region shares any pixel with r.
func (g *Region) OverlapsRect(r Rect) bool {
	for _, q := range g.rects {
		if q.Overlaps(r) {
			return true
		}
	}
	return false
}

// ContainsRect reports whether every pixel of r is covered by the region.
func (g *Region) ContainsRect(r Rect) bool {
	if r.Empty() {
		return true
	}
	// Subtract the region from r; containment means nothing remains.
	rem := []Rect{r}
	var next []Rect
	for _, q := range g.rects {
		next = next[:0]
		for _, p := range rem {
			next = p.Subtract(q, next)
		}
		rem, next = next, rem
		if len(rem) == 0 {
			return true
		}
	}
	return false
}

// UnionRect adds the pixels of r to the region.
func (g *Region) UnionRect(r Rect) {
	if r.Empty() {
		return
	}
	// Add only the parts of r not already covered, keeping disjointness.
	parts := []Rect{r}
	var next []Rect
	for _, q := range g.rects {
		next = next[:0]
		for _, p := range parts {
			next = p.Subtract(q, next)
		}
		parts, next = next, parts
		if len(parts) == 0 {
			return
		}
	}
	g.rects = append(g.rects, parts...)
	g.normalize()
}

// Union adds all pixels of other to the region.
func (g *Region) Union(other *Region) {
	for _, r := range other.rects {
		g.UnionRect(r)
	}
}

// SubtractRect removes the pixels of r from the region.
func (g *Region) SubtractRect(r Rect) {
	if r.Empty() || len(g.rects) == 0 {
		return
	}
	out := g.rects[:0:0]
	for _, q := range g.rects {
		out = q.Subtract(r, out)
	}
	g.rects = out
	g.normalize()
}

// Subtract removes all pixels of other from the region.
func (g *Region) Subtract(other *Region) {
	for _, r := range other.rects {
		g.SubtractRect(r)
		if len(g.rects) == 0 {
			return
		}
	}
}

// IntersectRect keeps only the pixels of the region inside r.
func (g *Region) IntersectRect(r Rect) {
	out := g.rects[:0]
	for _, q := range g.rects {
		if is := q.Intersect(r); !is.Empty() {
			out = append(out, is)
		}
	}
	g.rects = out
	g.normalize()
}

// Intersect keeps only the pixels also covered by other.
func (g *Region) Intersect(other *Region) {
	var out []Rect
	for _, q := range g.rects {
		for _, r := range other.rects {
			if is := q.Intersect(r); !is.Empty() {
				out = append(out, is)
			}
		}
	}
	// Parts of two disjoint sets intersected pairwise are disjoint.
	g.rects = out
	g.normalize()
}

// Translate moves the region by (dx, dy).
func (g *Region) Translate(dx, dy int) {
	for i := range g.rects {
		g.rects[i] = g.rects[i].Translate(dx, dy)
	}
}

// Equal reports whether the two regions cover exactly the same pixels.
func (g *Region) Equal(other *Region) bool {
	if g.Area() != other.Area() {
		return false
	}
	d := g.Clone()
	d.Subtract(other)
	return d.Empty()
}

// normalize sorts by (Y0, X0) and coalesces rectangles that abut
// horizontally with identical vertical extent, then vertically with
// identical horizontal extent. This keeps representations compact without
// requiring full y-x banding.
func (g *Region) normalize() {
	rs := g.rects
	if len(rs) < 2 {
		return
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Y0 != rs[j].Y0 {
			return rs[i].Y0 < rs[j].Y0
		}
		return rs[i].X0 < rs[j].X0
	})
	// Horizontal coalesce.
	out := rs[:0]
	for _, r := range rs {
		if n := len(out); n > 0 {
			last := &out[n-1]
			if last.Y0 == r.Y0 && last.Y1 == r.Y1 && last.X1 == r.X0 {
				last.X1 = r.X1
				continue
			}
		}
		out = append(out, r)
	}
	// Vertical coalesce (single pass; repeated passes would catch more but
	// a compact-not-minimal representation is fine).
	rs = out
	merged := true
	for merged {
		merged = false
		for i := 0; i < len(rs); i++ {
			for j := i + 1; j < len(rs); j++ {
				if rs[i].X0 == rs[j].X0 && rs[i].X1 == rs[j].X1 && rs[i].Y1 == rs[j].Y0 {
					rs[i].Y1 = rs[j].Y1
					rs = append(rs[:j], rs[j+1:]...)
					merged = true
					j--
				}
			}
		}
	}
	g.rects = rs
}

func (g *Region) String() string {
	if g.Empty() {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, r := range g.rects {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(r.String())
	}
	b.WriteByte('}')
	return b.String()
}
