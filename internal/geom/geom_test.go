package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestXYWH(t *testing.T) {
	r := XYWH(3, 4, 10, 20)
	if r.X0 != 3 || r.Y0 != 4 || r.X1 != 13 || r.Y1 != 24 {
		t.Fatalf("XYWH wrong: %v", r)
	}
	if r.W() != 10 || r.H() != 20 || r.Area() != 200 {
		t.Fatalf("size wrong: w=%d h=%d area=%d", r.W(), r.H(), r.Area())
	}
}

func TestRectEmpty(t *testing.T) {
	cases := []struct {
		r     Rect
		empty bool
	}{
		{Rect{}, true},
		{Rect{0, 0, 1, 1}, false},
		{Rect{5, 5, 5, 10}, true},
		{Rect{5, 5, 10, 5}, true},
		{Rect{10, 10, 5, 20}, true},
		{Rect{-5, -5, 0, 0}, false},
	}
	for _, c := range cases {
		if got := c.r.Empty(); got != c.empty {
			t.Errorf("%v.Empty() = %v, want %v", c.r, got, c.empty)
		}
	}
}

func TestRectCanon(t *testing.T) {
	if (Rect{7, 7, 3, 9}).Canon() != (Rect{}) {
		t.Error("empty rect should canonicalize to zero Rect")
	}
	r := Rect{1, 2, 3, 4}
	if r.Canon() != r {
		t.Error("non-empty rect should be unchanged")
	}
}

func TestRectIntersect(t *testing.T) {
	a := XYWH(0, 0, 10, 10)
	b := XYWH(5, 5, 10, 10)
	want := Rect{5, 5, 10, 10}
	if got := a.Intersect(b); got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got := b.Intersect(a); got != want {
		t.Errorf("Intersect not commutative: %v", got)
	}
	c := XYWH(20, 20, 5, 5)
	if got := a.Intersect(c); !got.Empty() {
		t.Errorf("disjoint Intersect = %v, want empty", got)
	}
}

func TestRectOverlapsContains(t *testing.T) {
	a := XYWH(0, 0, 10, 10)
	if !a.Overlaps(XYWH(9, 9, 5, 5)) {
		t.Error("corner overlap missed")
	}
	if a.Overlaps(XYWH(10, 0, 5, 5)) {
		t.Error("edge-adjacent rects do not overlap (half-open)")
	}
	if !a.Contains(XYWH(0, 0, 10, 10)) {
		t.Error("rect should contain itself")
	}
	if !a.Contains(Rect{}) {
		t.Error("everything contains empty")
	}
	if a.Contains(XYWH(5, 5, 10, 2)) {
		t.Error("partial overlap is not containment")
	}
}

func TestRectUnionBounds(t *testing.T) {
	a := XYWH(0, 0, 2, 2)
	b := XYWH(10, 10, 2, 2)
	u := a.Union(b)
	if u != (Rect{0, 0, 12, 12}) {
		t.Errorf("Union = %v", u)
	}
	if got := (Rect{}).Union(b); got != b {
		t.Errorf("empty union = %v, want %v", got, b)
	}
	if got := a.Union(Rect{5, 5, 5, 9}); got != a {
		t.Errorf("union with empty = %v, want %v", got, a)
	}
}

func TestRectSubtract(t *testing.T) {
	r := XYWH(0, 0, 10, 10)
	// Hole in the middle: 4 pieces.
	parts := r.Subtract(XYWH(3, 3, 4, 4), nil)
	if len(parts) != 4 {
		t.Fatalf("expected 4 parts, got %d: %v", len(parts), parts)
	}
	area := 0
	for i, p := range parts {
		area += p.Area()
		for j := i + 1; j < len(parts); j++ {
			if p.Overlaps(parts[j]) {
				t.Errorf("parts %v and %v overlap", p, parts[j])
			}
		}
	}
	if area != 100-16 {
		t.Errorf("area = %d, want %d", area, 100-16)
	}
	// Disjoint: returns r itself.
	parts = r.Subtract(XYWH(50, 50, 5, 5), nil)
	if len(parts) != 1 || parts[0] != r {
		t.Errorf("disjoint subtract = %v", parts)
	}
	// Fully covered: nothing remains.
	parts = r.Subtract(XYWH(-1, -1, 20, 20), nil)
	if len(parts) != 0 {
		t.Errorf("covered subtract = %v", parts)
	}
}

// rectGen generates small random rects (possibly empty) in a 32x32 universe.
func rectGen(rnd *rand.Rand) Rect {
	x, y := rnd.Intn(32), rnd.Intn(32)
	return XYWH(x-4, y-4, rnd.Intn(12), rnd.Intn(12))
}

// bitmap is the brute-force pixel-set model regions are checked against.
type bitmap [48][48]bool

func (b *bitmap) set(r Rect, v bool) {
	for y := max(r.Y0, -4); y < min(r.Y1, 44); y++ {
		for x := max(r.X0, -4); x < min(r.X1, 44); x++ {
			b[y+4][x+4] = v
		}
	}
}

func (b *bitmap) count() int {
	n := 0
	for y := range b {
		for x := range b[y] {
			if b[y][x] {
				n++
			}
		}
	}
	return n
}

func TestRectSubtractProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		r, s := rectGen(rnd), rectGen(rnd)
		parts := r.Subtract(s, nil)
		// Model.
		var m bitmap
		m.set(r, true)
		m.set(s, false)
		var got bitmap
		for i, p := range parts {
			if p.Empty() {
				t.Errorf("empty part from %v - %v", r, s)
				return false
			}
			got.set(p, true)
			for j := i + 1; j < len(parts); j++ {
				if p.Overlaps(parts[j]) {
					return false
				}
			}
		}
		return got == m
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPointOps(t *testing.T) {
	p := Point{1, 2}
	if p.Add(Point{3, 4}) != (Point{4, 6}) {
		t.Error("Add wrong")
	}
	if p.Sub(Point{3, 4}) != (Point{-2, -2}) {
		t.Error("Sub wrong")
	}
	if !p.In(XYWH(0, 0, 5, 5)) || p.In(XYWH(2, 2, 5, 5)) {
		t.Error("In wrong")
	}
}

func TestRectTranslate(t *testing.T) {
	if XYWH(1, 1, 2, 2).Translate(10, -1) != XYWH(11, 0, 2, 2) {
		t.Error("Translate wrong")
	}
}
