// Package geom provides the integer geometry primitives used throughout
// THINC: points, rectangles, and a region type supporting the set algebra
// (union, intersection, subtraction) that the translation layer relies on
// to track which parts of the screen a display command still owns.
//
// Rectangles follow the usual half-open convention: a Rect covers pixels
// (x, y) with X0 <= x < X1 and Y0 <= y < Y1. An empty rectangle has
// X0 >= X1 or Y0 >= Y1.
package geom

import "fmt"

// Point is an integer coordinate on the framebuffer.
type Point struct {
	X, Y int
}

// Add returns the translation of p by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the translation of p by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// In reports whether p lies inside r.
func (p Point) In(r Rect) bool {
	return p.X >= r.X0 && p.X < r.X1 && p.Y >= r.Y0 && p.Y < r.Y1
}

func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is a half-open axis-aligned rectangle [X0,X1) x [Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 int
}

// XYWH constructs a rectangle from an origin and a size.
func XYWH(x, y, w, h int) Rect { return Rect{x, y, x + w, y + h} }

// Empty reports whether the rectangle covers no pixels.
func (r Rect) Empty() bool { return r.X0 >= r.X1 || r.Y0 >= r.Y1 }

// W returns the width of r (0 if empty in x).
func (r Rect) W() int {
	if r.X1 <= r.X0 {
		return 0
	}
	return r.X1 - r.X0
}

// H returns the height of r (0 if empty in y).
func (r Rect) H() int {
	if r.Y1 <= r.Y0 {
		return 0
	}
	return r.Y1 - r.Y0
}

// Area returns the number of pixels covered by r.
func (r Rect) Area() int { return r.W() * r.H() }

// Canon returns the canonical form of r: any empty rectangle becomes the
// zero Rect, so that all empty rectangles compare equal.
func (r Rect) Canon() Rect {
	if r.Empty() {
		return Rect{}
	}
	return r
}

// Origin returns the top-left corner of r.
func (r Rect) Origin() Point { return Point{r.X0, r.Y0} }

// Translate returns r moved by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect {
	return Rect{r.X0 + dx, r.Y0 + dy, r.X1 + dx, r.Y1 + dy}
}

// Intersect returns the intersection of r and s (canonical empty if disjoint).
func (r Rect) Intersect(s Rect) Rect {
	t := Rect{
		X0: max(r.X0, s.X0),
		Y0: max(r.Y0, s.Y0),
		X1: min(r.X1, s.X1),
		Y1: min(r.Y1, s.Y1),
	}
	return t.Canon()
}

// Overlaps reports whether r and s share at least one pixel.
func (r Rect) Overlaps(s Rect) bool {
	return !r.Empty() && !s.Empty() &&
		r.X0 < s.X1 && s.X0 < r.X1 && r.Y0 < s.Y1 && s.Y0 < r.Y1
}

// Contains reports whether every pixel of s is inside r.
// An empty s is contained in everything.
func (r Rect) Contains(s Rect) bool {
	if s.Empty() {
		return true
	}
	return r.X0 <= s.X0 && r.Y0 <= s.Y0 && r.X1 >= s.X1 && r.Y1 >= s.Y1
}

// Union returns the bounding box of r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s.Canon()
	}
	if s.Empty() {
		return r
	}
	return Rect{
		X0: min(r.X0, s.X0),
		Y0: min(r.Y0, s.Y0),
		X1: max(r.X1, s.X1),
		Y1: max(r.Y1, s.Y1),
	}
}

// Subtract returns r minus s as up to four disjoint rectangles, appended to
// dst. The decomposition splits off the top and bottom bands first, then the
// left and right flanks of the middle band.
func (r Rect) Subtract(s Rect, dst []Rect) []Rect {
	is := r.Intersect(s)
	if is.Empty() {
		if !r.Empty() {
			dst = append(dst, r)
		}
		return dst
	}
	if is == r {
		return dst
	}
	// Top band.
	if is.Y0 > r.Y0 {
		dst = append(dst, Rect{r.X0, r.Y0, r.X1, is.Y0})
	}
	// Bottom band.
	if is.Y1 < r.Y1 {
		dst = append(dst, Rect{r.X0, is.Y1, r.X1, r.Y1})
	}
	// Left flank of middle band.
	if is.X0 > r.X0 {
		dst = append(dst, Rect{r.X0, is.Y0, is.X0, is.Y1})
	}
	// Right flank of middle band.
	if is.X1 < r.X1 {
		dst = append(dst, Rect{is.X1, is.Y0, r.X1, is.Y1})
	}
	return dst
}

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %dx%d]", r.X0, r.Y0, r.W(), r.H())
}
