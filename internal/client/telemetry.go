package client

import (
	"strings"

	"thinc/internal/telemetry"
	"thinc/internal/wire"
)

// connTelemetry is the per-connection metrics registry. The apply path
// pays one histogram observation and one counter increment per update;
// per-type message and byte series read straight through the client's
// atomic counters at scrape time, so they cost nothing on the hot path.
type connTelemetry struct {
	reg      *telemetry.Registry
	applyLat *telemetry.Histogram
	updates  *telemetry.Counter
}

// telemetryTypes are the message types exported as labeled series: the
// five display commands (§4) plus the streaming and control traffic a
// client applies.
var telemetryTypes = []wire.Type{
	wire.TRaw, wire.TCopy, wire.TSFill, wire.TPFill, wire.TBitmap,
	wire.TVideoFrame, wire.TAudioData,
	wire.TCacheStore, wire.TCachePaint,
}

func (cn *Conn) initTelemetry() {
	reg := telemetry.NewRegistry()
	cn.tel = &connTelemetry{
		reg: reg,
		applyLat: reg.Histogram("thinc_client_apply_latency_us",
			"time to decode and apply one update to the local framebuffer",
			telemetry.LatencyBucketsUS),
		updates: reg.Counter("thinc_client_updates_applied_total",
			"protocol messages applied to the local framebuffer"),
	}
	for _, wt := range telemetryTypes {
		wt := wt
		l := telemetry.L("type", strings.ToLower(wt.String()))
		reg.CounterFunc("thinc_client_messages_total",
			"messages applied by type",
			func() int64 { return cn.client().MsgCount(wt) }, l)
		reg.CounterFunc("thinc_client_bytes_total",
			"wire bytes applied by type",
			func() int64 { return cn.client().MsgBytes(wt) }, l)
	}
	reg.GaugeFunc("thinc_client_state",
		"connection state (0=connected 1=reconnecting 2=gone)",
		func() int64 { return int64(cn.state.Load()) })
	reg.CounterFunc("thinc_client_reconnects_total",
		"successful session reattaches",
		func() int64 { return cn.reconnects.Load() })
	reg.CounterFunc("thinc_client_pongs_sent_total",
		"heartbeat pongs answered",
		func() int64 { return cn.pongsSent.Load() })
	reg.GaugeFunc("thinc_client_degrade_rung",
		"server-reported degradation ladder rung",
		func() int64 { return int64(cn.degradeRung.Load()) })
	reg.CounterFunc("thinc_client_degrade_notices_total",
		"DegradeNotice messages received",
		func() int64 { return cn.degradeNotices.Load() })
	reg.CounterFunc("thinc_client_marks_seen_total",
		"end-to-end TimeMarks received (wire v5)",
		func() int64 { return cn.marksSeen.Load() })
	reg.CounterFunc("thinc_client_mark_acks_sent_total",
		"MarkAcks answered with accumulated apply time",
		func() int64 { return cn.markAcksSent.Load() })
	reg.GaugeFunc("thinc_client_cache_grant_kb",
		"negotiated payload cache capacity (wire v6)",
		func() int64 { return int64(cn.cacheGrantKB.Load()) })
	reg.CounterFunc("thinc_client_cache_stored_total",
		"CACHE_STORE payloads retained in the local store",
		func() int64 { return cn.client().stats.cacheStored.Load() })
	reg.CounterFunc("thinc_client_cache_painted_total",
		"CACHE_PAINT references satisfied from the local store",
		func() int64 { return cn.client().stats.cachePainted.Load() })
	reg.CounterFunc("thinc_client_cache_miss_reports_total",
		"CACHE_MISS desync reports sent to the server",
		func() int64 { return cn.cacheMissSent.Load() })
	reg.GaugeFunc("thinc_client_cache_bytes",
		"payload bytes currently held in the local store",
		func() int64 { return cn.client().stats.cacheBytes.Load() })
}

// client returns the current display client. RequestResize replaces it,
// so readers must fetch the pointer under the lock rather than cache it.
func (cn *Conn) client() *Client {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.c
}

// Telemetry returns the connection's metrics registry, for export
// through a debug listener or a bench snapshot.
func (cn *Conn) Telemetry() *telemetry.Registry { return cn.tel.reg }
