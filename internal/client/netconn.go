package client

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"thinc/internal/auth"
	"thinc/internal/cipher"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/wire"
)

// ConnState is the observable lifecycle of a Conn.
type ConnState int32

// Connection states.
const (
	// StateConnected: the transport is up and the update stream flows.
	StateConnected ConnState = iota
	// StateReconnecting: the transport dropped and the auto-reconnect
	// loop is dialing with backoff.
	StateReconnecting
	// StateGone: the connection is closed for good — either Close was
	// called or reconnection gave up.
	StateGone
)

func (s ConnState) String() string {
	switch s {
	case StateConnected:
		return "connected"
	case StateReconnecting:
		return "reconnecting"
	case StateGone:
		return "gone"
	}
	return fmt.Sprintf("ConnState(%d)", int32(s))
}

// Conn is a THINC client connected over a real network transport: it
// authenticates, decrypts the update stream, executes commands into
// the local framebuffer, and forwards user input (§3, §7). It answers
// server heartbeats, stores the server's session ticket, and — when
// built by Dial/DialWith — can redial and resume the session after a
// transport failure.
type Conn struct {
	dial         func() (net.Conn, error) // nil when built over a raw transport
	user, secret string
	role         uint8 // granted session role (wire.RoleOwner / RoleViewer)

	// ReadTimeout, when positive, bounds how long Run waits for any
	// server traffic (the server heartbeats well inside it). Zero means
	// wait forever — the pre-resilience behavior.
	ReadTimeout time.Duration

	// WriteTimeout, when positive, bounds each protocol write (input,
	// pong echoes). A server that stops draining its socket would
	// otherwise park Run's heartbeat reply in a blocked write forever —
	// the reply path must fail as loudly as the read path. Zero falls
	// back to ReadTimeout; both zero means block forever.
	WriteTimeout time.Duration

	mu     sync.Mutex
	nc     net.Conn
	enc    *cipher.StreamConn
	rd     io.Reader // read side: enc, possibly wrapped (fault injection)
	c      *Client
	ticket []byte
	closed bool

	// wrapRead, when set, wraps the decrypted read stream — the seam
	// the chaos harness uses to inject silent payload corruption below
	// the decoder but above the cipher. Reapplied across Redial.
	wrapRead func(io.Reader) io.Reader

	// Lifecycle counters are atomic so telemetry pollers and tests can
	// read them while Run holds no lock (clean under -race).
	state      atomic.Int32 // ConnState
	reconnects atomic.Int64
	pongsSent  atomic.Int64

	degradeRung    atomic.Int32 // server's ladder rung (last DegradeNotice)
	degradeNotices atomic.Int64

	// Integrity-audit accounting (wire v4). noAudit simulates a pre-v4
	// peer: probes are counted but never answered.
	auditProbes  atomic.Int64
	auditReplies atomic.Int64
	noAudit      atomic.Bool

	// End-to-end mark accounting (wire v5). applyAccumNS gathers the
	// decode+apply time spent since the last mark, echoed in the next
	// MarkAck so the server can separate its wire stage from our paint
	// stage. noE2E simulates a pre-v5 peer: marks are counted but never
	// acknowledged.
	marksSeen    atomic.Int64
	markAcksSent atomic.Int64
	applyAccumNS atomic.Int64
	noE2E        atomic.Bool

	// Payload cache negotiation (wire v6): the capacity we request on
	// every hello, the server's last grant, and how many CACHE_MISS
	// desync reports we have sent.
	cacheReqKB    int
	cacheGrantKB  atomic.Int32
	cacheMissSent atomic.Int64

	// Warm reattach (wire v7): the cache epoch from the last
	// SessionTicket (guarded by mu; echoed in the next Reattach only
	// while the store is intact) and the reattach-lifecycle counters.
	cacheEpoch       uint64
	reattachAttempts atomic.Int64
	warmResumes      atomic.Int64
	coldFallbacks    atomic.Int64
	busyRejections   atomic.Int64

	tel *connTelemetry

	wmu  sync.Mutex // serializes protocol writes (input, pongs)
	wbuf []byte     // reused encode buffer, guarded by wmu

	// ServerW and ServerH are the session's true framebuffer geometry;
	// with a smaller viewport the server scales for us (§6).
	ServerW, ServerH int
}

// Dial connects, authenticates as user with the given secret, and
// completes the display handshake with a viewW x viewH viewport.
func Dial(addr, user, secret string, viewW, viewH int) (*Conn, error) {
	return DialRole(addr, user, secret, viewW, viewH, wire.RoleOwner)
}

// DialRole is Dial with an explicit session role: RoleOwner attaches
// the interactive session, RoleViewer attaches a read-only broadcast
// viewer (input is discarded server-side, §6).
func DialRole(addr, user, secret string, viewW, viewH int, role uint8) (*Conn, error) {
	return DialWithRole(func() (net.Conn, error) {
		return net.Dial("tcp", addr)
	}, user, secret, viewW, viewH, role)
}

// DialWith is Dial over a caller-supplied transport dialer — tests use
// it to interpose fault injection; Redial reuses it to reconnect.
func DialWith(dial func() (net.Conn, error), user, secret string, viewW, viewH int) (*Conn, error) {
	return DialWithRole(dial, user, secret, viewW, viewH, wire.RoleOwner)
}

// DialWithRole is DialWith with an explicit session role.
func DialWithRole(dial func() (net.Conn, error), user, secret string, viewW, viewH int, role uint8) (*Conn, error) {
	nc, err := dial()
	if err != nil {
		return nil, err
	}
	c, err := HandshakeRole(nc, user, secret, viewW, viewH, role)
	if err != nil {
		nc.Close()
		return nil, err
	}
	c.dial = dial
	return c, nil
}

// Handshake runs the client side of the protocol handshake over an
// established transport (used directly by tests over net.Pipe).
func Handshake(nc net.Conn, user, secret string, viewW, viewH int) (*Conn, error) {
	return HandshakeRole(nc, user, secret, viewW, viewH, wire.RoleOwner)
}

// HandshakeRole is Handshake with an explicit session role. It requests
// the default payload cache capacity; use HandshakeRoleCache to choose
// (0 requests no cache — behaviorally a pre-v6 peer).
func HandshakeRole(nc net.Conn, user, secret string, viewW, viewH int, role uint8) (*Conn, error) {
	return HandshakeRoleCache(nc, user, secret, viewW, viewH, role, DefaultCacheRequestKB)
}

// HandshakeRoleCache is HandshakeRole with an explicit payload cache
// request in KB. The server grants min(request, its own cap) and the
// grant arrives in ServerInit; the store is sized to the grant, not the
// request.
func HandshakeRoleCache(nc net.Conn, user, secret string, viewW, viewH int, role uint8, cacheKB int) (*Conn, error) {
	if cacheKB < 0 {
		cacheKB = 0
	}
	enc, si, err := handshake(nc, user, secret,
		&wire.ClientInit{ViewW: viewW, ViewH: viewH, Name: user, Role: role,
			CacheKB: uint32(cacheKB)})
	if err != nil {
		return nil, err
	}
	if viewW <= 0 || viewH <= 0 || viewW > si.W || viewH > si.H {
		viewW, viewH = si.W, si.H
	}
	cn := &Conn{
		nc: nc, enc: enc, rd: enc,
		user: user, secret: secret, role: role,
		c:       New(viewW, viewH),
		ServerW: si.W, ServerH: si.H,
		cacheReqKB: cacheKB,
	}
	cn.c.EnableCache(int(si.CacheKB) * 1024)
	cn.cacheGrantKB.Store(int32(si.CacheKB))
	cn.initTelemetry()
	return cn, nil
}

// SetReadWrapper installs (or clears, with nil) a wrapper around the
// decrypted protocol read stream, applying it to the current transport
// immediately and to every transport Redial swaps in later. The chaos
// harness uses it to inject silent payload corruption that survives
// decode; it must be called before Run.
func (cn *Conn) SetReadWrapper(wrap func(io.Reader) io.Reader) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	cn.wrapRead = wrap
	cn.rd = cn.wrappedReader()
}

// wrappedReader builds the read side for the current transport. Caller
// holds cn.mu.
func (cn *Conn) wrappedReader() io.Reader {
	if cn.wrapRead == nil {
		return cn.enc
	}
	return cn.wrapRead(cn.enc)
}

// DropCache discards the payload store in place while keeping the
// session ticket — the chaos harness's stand-in for a thin device that
// rebooted (the RAM cache is gone) but recovered its ticket from stable
// storage. The next Reattach claims no epoch, so the server must answer
// cold and renegotiate the cache from scratch.
func (cn *Conn) DropCache() {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	cn.c.ResetCache(0)
	cn.cacheEpoch = 0
}

// SetAuditDisabled makes the connection ignore AuditProbes (while still
// counting them) — a faithful stand-in for a v2/v3 peer, used by tests
// and the -no-audit client flag to prove the server leaves legacy
// clients alone.
func (cn *Conn) SetAuditDisabled(v bool) { cn.noAudit.Store(v) }

// SetE2EDisabled makes the connection ignore TimeMarks (while still
// counting them) — a faithful stand-in for a pre-v5 peer, used by tests
// and the -no-e2e client flag to prove the server stops marking legacy
// clients.
func (cn *Conn) SetE2EDisabled(v bool) { cn.noE2E.Store(v) }

// handshake authenticates, switches to the encrypted transport, sends
// the hello (ClientInit or Reattach), and reads the ServerInit.
func handshake(nc net.Conn, user, secret string, hello wire.Message) (*cipher.StreamConn, *wire.ServerInit, error) {
	_ = nc.SetDeadline(time.Now().Add(10 * time.Second))
	m, err := wire.ReadMessage(nc)
	if err != nil {
		return nil, nil, err
	}
	ch, ok := m.(*wire.AuthChallenge)
	if !ok {
		return nil, nil, fmt.Errorf("client: expected challenge, got %v", m.Type())
	}
	if err := wire.WriteMessage(nc, &wire.AuthResponse{
		User: user, Proof: auth.Proof(secret, ch.Nonce),
	}); err != nil {
		return nil, nil, err
	}
	m, err = wire.ReadMessage(nc)
	if err != nil {
		return nil, nil, err
	}
	res, ok := m.(*wire.AuthResult)
	if !ok {
		return nil, nil, fmt.Errorf("client: expected auth result, got %v", m.Type())
	}
	if !res.OK {
		return nil, nil, fmt.Errorf("client: authentication refused: %s", res.Reason)
	}

	enc, err := cipher.NewStreamConn(nc, auth.SessionKey(secret, ch.Nonce), false)
	if err != nil {
		return nil, nil, err
	}
	if err := wire.WriteMessage(enc, hello); err != nil {
		return nil, nil, err
	}
	m, err = wire.ReadMessage(enc)
	if err != nil {
		return nil, nil, err
	}
	si, ok := m.(*wire.ServerInit)
	if !ok {
		if busy, isBusy := m.(*wire.AttachBusy); isBusy {
			return nil, nil, &BusyError{
				RetryAfter: time.Duration(busy.RetryAfterMS) * time.Millisecond}
		}
		return nil, nil, fmt.Errorf("client: expected server init, got %v", m.Type())
	}
	_ = nc.SetDeadline(time.Time{})
	return enc, si, nil
}

// Redial dials a fresh transport and resumes the session: it presents
// the saved session ticket in a Reattach (falling back to a plain
// ClientInit when no ticket has been received yet) and swaps the new
// transport in. The local framebuffer is kept — the server's resync is
// a full-screen RAW, so the screen converges regardless of what was
// missed while disconnected.
func (cn *Conn) Redial() error {
	cn.mu.Lock()
	dial := cn.dial
	ticket := append([]byte(nil), cn.ticket...)
	viewW, viewH := cn.c.FB().W(), cn.c.FB().H()
	role := cn.role
	// Claim the warm store only while it is actually intact: the epoch
	// from the last ticket, zeroed whenever the store has been reset.
	// Epoch 0 on the wire means "no claim" — exactly what a pre-v7
	// hello says — so the server can never resume warm against nothing.
	epoch := uint64(0)
	if cn.c.CacheEnabled() {
		epoch = cn.cacheEpoch
	}
	closed := cn.closed
	cn.mu.Unlock()
	if closed {
		return errors.New("client: connection closed")
	}
	if dial == nil {
		return errors.New("client: no dialer (connection built over a raw transport)")
	}

	nc, err := dial()
	if err != nil {
		return err
	}
	var hello wire.Message
	if len(ticket) > 0 {
		hello = &wire.Reattach{Ticket: ticket, ViewW: viewW, ViewH: viewH,
			Name: cn.user, Role: role, CacheKB: uint32(cn.cacheReqKB),
			CacheEpoch: epoch}
		cn.reattachAttempts.Add(1)
	} else {
		hello = &wire.ClientInit{ViewW: viewW, ViewH: viewH,
			Name: cn.user, Role: role, CacheKB: uint32(cn.cacheReqKB)}
	}
	enc, si, err := handshake(nc, cn.user, cn.secret, hello)
	if err != nil {
		nc.Close()
		return err
	}

	cn.mu.Lock()
	if cn.closed {
		cn.mu.Unlock()
		nc.Close()
		return errors.New("client: connection closed")
	}
	old := cn.nc
	cn.nc, cn.enc = nc, enc
	cn.rd = cn.wrappedReader()
	cn.ServerW, cn.ServerH = si.W, si.H
	// The server's explicit warm/cold verdict (wire v7). Warm: it kept
	// the model our epoch named, so the store stays as-is and its
	// holdings are live. Cold (or a pre-v7 server, whose verdict byte
	// decodes as 0): the server restarted its model, so any holdings we
	// kept are garbage — discard them along with the spent epoch.
	if si.CacheWarm != 0 {
		cn.c.EnableCache(int(si.CacheKB) * 1024)
		cn.warmResumes.Add(1)
	} else {
		cn.c.ResetCache(int(si.CacheKB) * 1024)
		cn.cacheEpoch = 0
		if epoch != 0 {
			cn.coldFallbacks.Add(1)
		}
	}
	cn.cacheGrantKB.Store(int32(si.CacheKB))
	cn.ticket = nil // the old ticket is spent; the server pushes a fresh one
	// A fresh attach starts lossless; a reattach that carried its rung
	// forward is re-told by the server's CauseAdmin notice.
	cn.degradeRung.Store(0)
	cn.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return nil
}

// Run applies the update stream until the connection fails or closes.
// Heartbeats are answered and session tickets stored in-line; unknown
// well-framed message types are skipped (forward compatibility).
func (cn *Conn) Run() error {
	for {
		cn.mu.Lock()
		nc, rd := cn.nc, cn.rd
		rt := cn.ReadTimeout
		cn.mu.Unlock()
		if rt > 0 {
			_ = nc.SetReadDeadline(time.Now().Add(rt))
		}
		m, err := wire.ReadMessage(rd)
		if err != nil {
			if errors.Is(err, wire.ErrUnknownType) {
				continue
			}
			return err
		}
		switch v := m.(type) {
		case *wire.Ping:
			if err := cn.send(&wire.Pong{Seq: v.Seq, TimeUS: v.TimeUS}); err != nil {
				return err
			}
			cn.pongsSent.Add(1)
			continue
		case *wire.Pong:
			continue // RTT probes we did not send; ignore
		case *wire.SessionTicket:
			cn.mu.Lock()
			cn.ticket = append([]byte(nil), v.Ticket...)
			cn.role = v.Role // the server echoes the granted role
			cn.cacheEpoch = v.CacheEpoch
			cn.mu.Unlock()
			continue
		case *wire.DegradeNotice:
			// The server's quality ladder moved; record it for telemetry
			// and Stats. Display content needs no action — degraded
			// payloads decode through the same command path.
			cn.degradeRung.Store(int32(v.Rung))
			cn.degradeNotices.Add(1)
			continue
		case *wire.AuditProbe:
			// Integrity audit (v4): digest the requested tile window of
			// our framebuffer and echo it back. A connection simulating a
			// pre-v4 peer stays silent, exactly like a client that skips
			// the unknown message type.
			cn.auditProbes.Add(1)
			if cn.noAudit.Load() {
				continue
			}
			if err := cn.send(cn.auditReply(v)); err != nil {
				return err
			}
			cn.auditReplies.Add(1)
			continue
		case *wire.TimeMark:
			// End-to-end tracing (v5): everything the mark covers was
			// applied before it arrived (TCP keeps the batch in order), so
			// ack now, echoing the decode+apply time spent since the last
			// mark. A connection simulating a pre-v5 peer stays silent,
			// exactly like a client that skips the unknown message type.
			cn.marksSeen.Add(1)
			if cn.noE2E.Load() {
				continue
			}
			applyUS := cn.applyAccumNS.Swap(0) / 1000
			if applyUS > int64(^uint32(0)) {
				applyUS = int64(^uint32(0))
			}
			if err := cn.send(&wire.MarkAck{Epoch: v.Epoch, TimeUS: v.TimeUS,
				ApplyUS: uint32(applyUS)}); err != nil {
				return err
			}
			cn.markAcksSent.Add(1)
			continue
		}
		start := time.Now()
		cn.mu.Lock()
		err = cn.c.Apply(m)
		cn.mu.Unlock()
		elapsed := time.Since(start)
		cn.applyAccumNS.Add(int64(elapsed))
		cn.tel.applyLat.Observe(elapsed.Microseconds())
		cn.tel.updates.Inc()
		if err != nil {
			// A cache desync is recoverable by design: report it and keep
			// applying — the server forgets the digest and repaints the
			// region with plain RAW (wire v6's self-healing path).
			var miss *CacheMissError
			if errors.As(err, &miss) {
				if err := cn.send(&wire.CacheMiss{Digest: miss.Digest, Rect: miss.Rect}); err != nil {
					return err
				}
				cn.cacheMissSent.Add(1)
				continue
			}
			return err
		}
	}
}

// send writes one protocol message on the current transport, framing
// it into a per-connection buffer reused across sends (input and pong
// traffic is frequent, small, and must not generate garbage). Each
// write carries the write deadline so a stalled server cannot park the
// sender forever.
func (cn *Conn) send(m wire.Message) error {
	cn.mu.Lock()
	nc, enc := cn.nc, cn.enc
	wt := cn.WriteTimeout
	if wt <= 0 {
		wt = cn.ReadTimeout
	}
	cn.mu.Unlock()
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	buf, err := wire.AppendMessage(cn.wbuf[:0], m)
	if err != nil {
		return err
	}
	cn.wbuf = buf
	if wt > 0 {
		_ = nc.SetWriteDeadline(time.Now().Add(wt))
	}
	_, err = enc.Write(buf)
	return err
}

// State returns the connection's lifecycle state.
func (cn *Conn) State() ConnState {
	return ConnState(cn.state.Load())
}

func (cn *Conn) setState(s ConnState) {
	cn.state.Store(int32(s))
}

// Role returns the session role the server granted (the dialed role
// until the first SessionTicket confirms or corrects it).
func (cn *Conn) Role() uint8 {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.role
}

// Ticket returns a copy of the last session ticket the server issued
// (nil before the first one arrives).
func (cn *Conn) Ticket() []byte {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return append([]byte(nil), cn.ticket...)
}

// WithFB runs f with exclusive access to the live framebuffer — the
// fault-injection hook integrity tests use to corrupt pixels silently,
// below every protocol check.
func (cn *Conn) WithFB(f func(*fb.Framebuffer)) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	f(cn.c.FB())
}

// Snapshot returns a copy of the current framebuffer.
func (cn *Conn) Snapshot() *fb.Framebuffer {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.c.FB().Clone()
}

// View returns a copy of the framebuffer with the hardware cursor
// composited — what a physical display attached to this client shows.
func (cn *Conn) View() *fb.Framebuffer {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.c.ComposeCursor()
}

// CursorPos returns the current cursor position in viewport space.
func (cn *Conn) CursorPos() geom.Point {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.c.CursorPos()
}

// Stats returns a point-in-time copy of the client instrumentation
// counters, including the connection state and reconnect accounting.
// Safe to call from any goroutine while Run applies updates.
func (cn *Conn) Stats() Stats {
	s := *cn.client().Stats()
	s.State = ConnState(cn.state.Load())
	s.Reconnects = int(cn.reconnects.Load())
	s.PongsSent = int(cn.pongsSent.Load())
	s.DegradeRung = int(cn.degradeRung.Load())
	s.DegradeNotices = int(cn.degradeNotices.Load())
	s.AuditProbes = int(cn.auditProbes.Load())
	s.AuditReplies = int(cn.auditReplies.Load())
	s.MarksSeen = int(cn.marksSeen.Load())
	s.MarkAcksSent = int(cn.markAcksSent.Load())
	s.CacheKB = int(cn.cacheGrantKB.Load())
	s.CacheMissReports = int(cn.cacheMissSent.Load())
	s.ReattachAttempts = int(cn.reattachAttempts.Load())
	s.WarmResumes = int(cn.warmResumes.Load())
	s.ColdFallbacks = int(cn.coldFallbacks.Load())
	s.BusyRejections = int(cn.busyRejections.Load())
	return s
}

// auditReply digests the probe's tile window against the local
// framebuffer. The W/H echo lets the server discard a reply that raced
// a viewport change instead of misreading it as corruption; a window
// past the edge of our grid is clamped, and the shrunken Count tells
// the server so.
func (cn *Conn) auditReply(p *wire.AuditProbe) *wire.AuditReply {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	f := cn.c.FB()
	g := fb.Grid(f.W(), f.H(), int(p.Tile))
	reply := &wire.AuditReply{Seq: p.Seq, Start: p.Start,
		W: uint16(f.W()), H: uint16(f.H())}
	start := int(p.Start)
	for i := 0; i < int(p.Count); i++ {
		idx := start + i
		if idx < 0 || idx >= g.Tiles() {
			break
		}
		reply.Digests = append(reply.Digests, f.DigestRect(g.Rect(idx)))
	}
	reply.Count = uint16(len(reply.Digests))
	return reply
}

// SendInput forwards a user input event. Coordinates are in server
// framebuffer space; callers using a scaled viewport map them first.
func (cn *Conn) SendInput(ev *wire.Input) error {
	return cn.send(ev)
}

// RequestResize asks the server to rescale updates to a new viewport.
// The local framebuffer is replaced at the new geometry.
func (cn *Conn) RequestResize(viewW, viewH int) error {
	if err := cn.send(&wire.Resize{ViewW: viewW, ViewH: viewH}); err != nil {
		return err
	}
	cn.mu.Lock()
	old := cn.c
	cn.c = New(viewW, viewH)
	// The payload store is position-independent and the server's model
	// of it survives a resize; carry it over so the session stays warm.
	cn.c.store = old.store
	cn.c.cacheGauges()
	cn.mu.Unlock()
	return nil
}

// Close tears the connection down for good; RunAuto stops reconnecting.
func (cn *Conn) Close() error {
	cn.mu.Lock()
	cn.closed = true
	nc := cn.nc
	cn.mu.Unlock()
	cn.state.Store(int32(StateGone))
	return nc.Close()
}

// isClosed reports whether Close has been called.
func (cn *Conn) isClosed() bool {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.closed
}
