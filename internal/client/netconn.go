package client

import (
	"fmt"
	"net"
	"sync"
	"time"

	"thinc/internal/auth"
	"thinc/internal/cipher"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/wire"
)

// Conn is a THINC client connected over a real network transport: it
// authenticates, decrypts the update stream, executes commands into
// the local framebuffer, and forwards user input (§3, §7).
type Conn struct {
	nc  net.Conn
	enc *cipher.StreamConn

	mu sync.Mutex
	c  *Client

	// ServerW and ServerH are the session's true framebuffer geometry;
	// with a smaller viewport the server scales for us (§6).
	ServerW, ServerH int
}

// Dial connects, authenticates as user with the given secret, and
// completes the display handshake with a viewW x viewH viewport.
func Dial(addr, user, secret string, viewW, viewH int) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := Handshake(nc, user, secret, viewW, viewH)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// Handshake runs the client side of the protocol handshake over an
// established transport (used directly by tests over net.Pipe).
func Handshake(nc net.Conn, user, secret string, viewW, viewH int) (*Conn, error) {
	_ = nc.SetDeadline(time.Now().Add(10 * time.Second))
	m, err := wire.ReadMessage(nc)
	if err != nil {
		return nil, err
	}
	ch, ok := m.(*wire.AuthChallenge)
	if !ok {
		return nil, fmt.Errorf("client: expected challenge, got %v", m.Type())
	}
	if err := wire.WriteMessage(nc, &wire.AuthResponse{
		User: user, Proof: auth.Proof(secret, ch.Nonce),
	}); err != nil {
		return nil, err
	}
	m, err = wire.ReadMessage(nc)
	if err != nil {
		return nil, err
	}
	res, ok := m.(*wire.AuthResult)
	if !ok {
		return nil, fmt.Errorf("client: expected auth result, got %v", m.Type())
	}
	if !res.OK {
		return nil, fmt.Errorf("client: authentication refused: %s", res.Reason)
	}

	enc, err := cipher.NewStreamConn(nc, auth.SessionKey(secret, ch.Nonce), false)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteMessage(enc, &wire.ClientInit{ViewW: viewW, ViewH: viewH, Name: user}); err != nil {
		return nil, err
	}
	m, err = wire.ReadMessage(enc)
	if err != nil {
		return nil, err
	}
	si, ok := m.(*wire.ServerInit)
	if !ok {
		return nil, fmt.Errorf("client: expected server init, got %v", m.Type())
	}
	_ = nc.SetDeadline(time.Time{})

	if viewW <= 0 || viewH <= 0 || viewW > si.W || viewH > si.H {
		viewW, viewH = si.W, si.H
	}
	return &Conn{
		nc: nc, enc: enc,
		c:       New(viewW, viewH),
		ServerW: si.W, ServerH: si.H,
	}, nil
}

// Run applies the update stream until the connection fails or closes.
func (cn *Conn) Run() error {
	for {
		m, err := wire.ReadMessage(cn.enc)
		if err != nil {
			return err
		}
		cn.mu.Lock()
		err = cn.c.Apply(m)
		cn.mu.Unlock()
		if err != nil {
			return err
		}
	}
}

// Snapshot returns a copy of the current framebuffer.
func (cn *Conn) Snapshot() *fb.Framebuffer {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.c.FB().Clone()
}

// View returns a copy of the framebuffer with the hardware cursor
// composited — what a physical display attached to this client shows.
func (cn *Conn) View() *fb.Framebuffer {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.c.ComposeCursor()
}

// CursorPos returns the current cursor position in viewport space.
func (cn *Conn) CursorPos() geom.Point {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.c.CursorPos()
}

// Stats returns a copy of the client instrumentation counters.
func (cn *Conn) Stats() Stats {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	s := *cn.c.Stats()
	s.Messages = make(map[wire.Type]int, len(cn.c.Stats().Messages))
	s.Bytes = make(map[wire.Type]int64, len(cn.c.Stats().Bytes))
	for k, v := range cn.c.Stats().Messages {
		s.Messages[k] = v
	}
	for k, v := range cn.c.Stats().Bytes {
		s.Bytes[k] = v
	}
	return s
}

// SendInput forwards a user input event. Coordinates are in server
// framebuffer space; callers using a scaled viewport map them first.
func (cn *Conn) SendInput(ev *wire.Input) error {
	return wire.WriteMessage(cn.enc, ev)
}

// RequestResize asks the server to rescale updates to a new viewport.
// The local framebuffer is replaced at the new geometry.
func (cn *Conn) RequestResize(viewW, viewH int) error {
	if err := wire.WriteMessage(cn.enc, &wire.Resize{ViewW: viewW, ViewH: viewH}); err != nil {
		return err
	}
	cn.mu.Lock()
	cn.c = New(viewW, viewH)
	cn.mu.Unlock()
	return nil
}

// Close tears the connection down.
func (cn *Conn) Close() error { return cn.nc.Close() }
