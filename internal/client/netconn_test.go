package client_test

import (
	"io"
	"net"
	"testing"
	"time"

	"thinc/internal/auth"
	"thinc/internal/client"
	"thinc/internal/core"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/server"
	"thinc/internal/testutil"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

// newHost starts an in-process host and runs the calling test under
// the goroutine-leak checker: the host closes first (cleanups are
// LIFO), then the leak diff must come back empty.
func newHost(t *testing.T, w, h int) *server.Host {
	t.Helper()
	testutil.CheckGoroutines(t)
	acc := auth.NewAccounts()
	acc.Add("u", "p")
	host := server.NewHost(w, h, auth.NewAuthenticator("u", acc),
		server.Options{FlushInterval: time.Millisecond})
	t.Cleanup(host.Close)
	return host
}

func pipeTo(t *testing.T, h *server.Host, user, pass string, vw, vh int) (*client.Conn, error) {
	t.Helper()
	a, b := net.Pipe()
	go h.ServeConn(a)
	return client.Handshake(b, user, pass, vw, vh)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout: %s", what)
}

func TestHandshakeGeometryNegotiation(t *testing.T) {
	h := newHost(t, 200, 100)
	// Oversized viewport request clamps to the session size.
	conn, err := pipeTo(t, h, "u", "p", 4000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.ServerW != 200 || conn.ServerH != 100 {
		t.Fatalf("server geometry %dx%d", conn.ServerW, conn.ServerH)
	}
	if snap := conn.Snapshot(); snap.W() != 200 || snap.H() != 100 {
		t.Fatalf("viewport %dx%d, want clamped to session", snap.W(), snap.H())
	}
}

func TestHandshakeRejectsBadSecret(t *testing.T) {
	h := newHost(t, 64, 48)
	if _, err := pipeTo(t, h, "u", "nope", 64, 48); err == nil {
		t.Fatal("bad secret accepted")
	}
}

func TestConnCursorAndView(t *testing.T) {
	h := newHost(t, 64, 48)
	conn, err := pipeTo(t, h, "u", "p", 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()

	h.Do(func(d *xserver.Display) {
		cur := make([]pixel.ARGB, 4*4)
		for i := range cur {
			cur[i] = pixel.RGB(255, 0, 0)
		}
		d.SetCursor(cur, 4, 4, geom.Point{})
		d.MoveCursor(geom.Point{X: 20, Y: 10})
	})
	waitFor(t, "cursor", func() bool {
		return conn.CursorPos() == (geom.Point{X: 20, Y: 10})
	})
	// View composites the cursor; Snapshot does not.
	snap, view := conn.Snapshot(), conn.View()
	if snap.At(21, 11) == pixel.RGB(255, 0, 0) {
		t.Error("snapshot must not contain the cursor")
	}
	if view.At(21, 11) != pixel.RGB(255, 0, 0) {
		t.Errorf("view missing cursor: %v", view.At(21, 11))
	}
}

func TestConnStatsIsolatedCopy(t *testing.T) {
	h := newHost(t, 64, 48)
	conn, err := pipeTo(t, h, "u", "p", 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()
	waitFor(t, "refresh", func() bool { return conn.Stats().Messages[wire.TRaw] > 0 })
	st := conn.Stats()
	st.Messages[wire.TRaw] = 9999 // mutating the copy must not leak
	if conn.Stats().Messages[wire.TRaw] == 9999 {
		t.Fatal("Stats returned shared state")
	}
}

// auditHost is newHost with a fast integrity-audit cadence over a
// 16px tile grid.
func auditHost(t *testing.T, w, h int) *server.Host {
	t.Helper()
	testutil.CheckGoroutines(t)
	acc := auth.NewAccounts()
	acc.Add("u", "p")
	host := server.NewHost(w, h, auth.NewAuthenticator("u", acc),
		server.Options{
			FlushInterval: time.Millisecond,
			AuditInterval: 5 * time.Millisecond,
			AuditTimeout:  500 * time.Millisecond,
			Core:          core.Options{AuditTileSize: 16},
		})
	t.Cleanup(host.Close)
	return host
}

// TestConnAnswersAuditAndHeals covers the client side of the wire-v4
// audit: probes are answered with live-framebuffer digests, and a
// silently corrupted tile (injected below every protocol check via
// WithFB) is healed by the server's targeted repair.
func TestConnAnswersAuditAndHeals(t *testing.T) {
	h := auditHost(t, 96, 64)
	conn, err := pipeTo(t, h, "u", "p", 96, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// An identity read wrapper exercises the fault-injection seam the
	// chaos corrupter uses, without changing the bytes.
	conn.SetReadWrapper(func(r io.Reader) io.Reader { return r })
	go conn.Run()

	h.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, 96, 64))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(10, 120, 70)}, geom.XYWH(0, 0, 96, 64))
	})
	want := h.ScreenChecksum()
	waitFor(t, "convergence", func() bool {
		return conn.Snapshot().Checksum() == want
	})
	waitFor(t, "audit replies", func() bool {
		st := conn.Stats()
		return st.AuditProbes > 0 && st.AuditReplies > 0
	})

	conn.WithFB(func(f *fb.Framebuffer) {
		f.Set(3, 3, f.At(3, 3)^0x00ff0000)
	})
	waitFor(t, "self-healing", func() bool {
		return conn.Snapshot().Checksum() == want
	})
}

// TestConnAuditDisabledIgnoresProbes covers the pre-v4 emulation path:
// with SetAuditDisabled the client counts probes but never replies.
func TestConnAuditDisabledIgnoresProbes(t *testing.T) {
	h := auditHost(t, 96, 64)
	conn, err := pipeTo(t, h, "u", "p", 96, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetAuditDisabled(true)
	go conn.Run()

	waitFor(t, "probe seen", func() bool { return conn.Stats().AuditProbes > 0 })
	time.Sleep(20 * time.Millisecond)
	if st := conn.Stats(); st.AuditReplies != 0 {
		t.Fatalf("disabled audit answered %d probes", st.AuditReplies)
	}
}

func TestConnRunEndsOnClose(t *testing.T) {
	h := newHost(t, 32, 24)
	conn, err := pipeTo(t, h, "u", "p", 32, 24)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- conn.Run() }()
	conn.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run should report the closed transport")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after Close")
	}
}
