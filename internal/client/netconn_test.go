package client_test

import (
	"net"
	"testing"
	"time"

	"thinc/internal/auth"
	"thinc/internal/client"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/server"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

func newHost(t *testing.T, w, h int) *server.Host {
	t.Helper()
	acc := auth.NewAccounts()
	acc.Add("u", "p")
	return server.NewHost(w, h, auth.NewAuthenticator("u", acc),
		server.Options{FlushInterval: time.Millisecond})
}

func pipeTo(t *testing.T, h *server.Host, user, pass string, vw, vh int) (*client.Conn, error) {
	t.Helper()
	a, b := net.Pipe()
	go h.ServeConn(a)
	return client.Handshake(b, user, pass, vw, vh)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout: %s", what)
}

func TestHandshakeGeometryNegotiation(t *testing.T) {
	h := newHost(t, 200, 100)
	// Oversized viewport request clamps to the session size.
	conn, err := pipeTo(t, h, "u", "p", 4000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.ServerW != 200 || conn.ServerH != 100 {
		t.Fatalf("server geometry %dx%d", conn.ServerW, conn.ServerH)
	}
	if snap := conn.Snapshot(); snap.W() != 200 || snap.H() != 100 {
		t.Fatalf("viewport %dx%d, want clamped to session", snap.W(), snap.H())
	}
}

func TestHandshakeRejectsBadSecret(t *testing.T) {
	h := newHost(t, 64, 48)
	if _, err := pipeTo(t, h, "u", "nope", 64, 48); err == nil {
		t.Fatal("bad secret accepted")
	}
}

func TestConnCursorAndView(t *testing.T) {
	h := newHost(t, 64, 48)
	conn, err := pipeTo(t, h, "u", "p", 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()

	h.Do(func(d *xserver.Display) {
		cur := make([]pixel.ARGB, 4*4)
		for i := range cur {
			cur[i] = pixel.RGB(255, 0, 0)
		}
		d.SetCursor(cur, 4, 4, geom.Point{})
		d.MoveCursor(geom.Point{X: 20, Y: 10})
	})
	waitFor(t, "cursor", func() bool {
		return conn.CursorPos() == (geom.Point{X: 20, Y: 10})
	})
	// View composites the cursor; Snapshot does not.
	snap, view := conn.Snapshot(), conn.View()
	if snap.At(21, 11) == pixel.RGB(255, 0, 0) {
		t.Error("snapshot must not contain the cursor")
	}
	if view.At(21, 11) != pixel.RGB(255, 0, 0) {
		t.Errorf("view missing cursor: %v", view.At(21, 11))
	}
}

func TestConnStatsIsolatedCopy(t *testing.T) {
	h := newHost(t, 64, 48)
	conn, err := pipeTo(t, h, "u", "p", 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()
	waitFor(t, "refresh", func() bool { return conn.Stats().Messages[wire.TRaw] > 0 })
	st := conn.Stats()
	st.Messages[wire.TRaw] = 9999 // mutating the copy must not leak
	if conn.Stats().Messages[wire.TRaw] == 9999 {
		t.Fatal("Stats returned shared state")
	}
}

func TestConnRunEndsOnClose(t *testing.T) {
	h := newHost(t, 32, 24)
	conn, err := pipeTo(t, h, "u", "p", 32, 24)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- conn.Run() }()
	conn.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run should report the closed transport")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after Close")
	}
}
