// Package client implements the THINC client: a simple, stateless
// input-output device (§3). It keeps a local framebuffer, executes the
// five protocol display commands against it using exactly the raster
// operations commodity display hardware accelerates, scales video
// streams in a (software) overlay, and collects the instrumentation the
// headless benchmark client used for the paper's measurements (§8.1).
package client

import (
	"fmt"
	"sync/atomic"

	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/wire"
)

// Stats is the client-side instrumentation: message and byte counts per
// command type, plus audio/video delivery accounting. When read through
// Conn.Stats, the connection lifecycle fields are populated too.
type Stats struct {
	Messages map[wire.Type]int
	Bytes    map[wire.Type]int64

	FramesShown int
	AudioChunks int
	LastVideoTS uint64
	LastAudioTS uint64

	// Connection lifecycle (Conn.Stats only).
	State      ConnState
	Reconnects int
	PongsSent  int

	// Overload feedback (Conn.Stats only): the server's degradation
	// ladder rung from the last DegradeNotice, and how many notices
	// have arrived.
	DegradeRung    int
	DegradeNotices int

	// Integrity audit (Conn.Stats only): probes received from the
	// server and digest replies sent back (wire v4).
	AuditProbes  int
	AuditReplies int

	// End-to-end tracing (Conn.Stats only): TimeMarks received from the
	// server and MarkAcks sent back (wire v5).
	MarksSeen    int
	MarkAcksSent int

	// Payload cache (wire v6): CACHE_STORE payloads retained,
	// CACHE_PAINT references satisfied locally, current store occupancy,
	// and payload bytes the replays kept off the wire. CacheKB and
	// CacheMissReports are Conn.Stats only (the negotiated grant, and
	// desyncs reported back as CACHE_MISS).
	CacheStored      int
	CachePainted     int
	CacheEntries     int
	CacheBytes       int64
	CacheSavedBytes  int64
	CacheKB          int
	CacheMissReports int

	// Reattach lifecycle (Conn.Stats only, wire v7): reattach hellos
	// sent, sessions resumed with the payload store kept warm, warm
	// claims the server answered cold, and AttachBusy admission
	// refusals honored.
	ReattachAttempts int
	WarmResumes      int
	ColdFallbacks    int
	BusyRejections   int
}

// counters is the lock-free backing store for Stats. The per-type
// arrays are indexed by wire.Type (a uint8), so hot-path accounting is
// two atomic adds with no map or lock; Stats() materializes the maps.
// Everything is atomic so telemetry pollers can read mid-apply and
// `go test -race` stays clean.
type counters struct {
	msgs  [256]atomic.Int64
	bytes [256]atomic.Int64

	framesShown atomic.Int64
	audioChunks atomic.Int64
	lastVideoTS atomic.Uint64
	lastAudioTS atomic.Uint64

	// Payload cache accounting; the occupancy gauges are refreshed
	// after each store mutation so snapshots stay lock-free.
	cacheStored  atomic.Int64
	cachePainted atomic.Int64
	cacheEntries atomic.Int64
	cacheBytes   atomic.Int64
	cacheSaved   atomic.Int64
}

// snapshot builds a point-in-time Stats view.
func (ct *counters) snapshot() *Stats {
	s := &Stats{
		Messages:        make(map[wire.Type]int),
		Bytes:           make(map[wire.Type]int64),
		FramesShown:     int(ct.framesShown.Load()),
		AudioChunks:     int(ct.audioChunks.Load()),
		LastVideoTS:     ct.lastVideoTS.Load(),
		LastAudioTS:     ct.lastAudioTS.Load(),
		CacheStored:     int(ct.cacheStored.Load()),
		CachePainted:    int(ct.cachePainted.Load()),
		CacheEntries:    int(ct.cacheEntries.Load()),
		CacheBytes:      ct.cacheBytes.Load(),
		CacheSavedBytes: ct.cacheSaved.Load(),
	}
	for t := range ct.msgs {
		if n := ct.msgs[t].Load(); n > 0 {
			s.Messages[wire.Type(t)] = int(n)
			s.Bytes[wire.Type(t)] = ct.bytes[t].Load()
		}
	}
	return s
}

// Client is a THINC display client.
type Client struct {
	fb      *fb.Framebuffer
	streams map[uint32]*stream
	stats   counters
	cursor  cursorState

	// store is the wire-v6 payload cache; nil until EnableCache grants
	// capacity. It survives RequestResize (the server's model does too).
	store *payloadStore
}

// cursorState is the client-side hardware cursor: an overlay the
// display hardware composites above the framebuffer.
type cursorState struct {
	img  []pixel.ARGB
	w, h int
	hot  geom.Point
	pos  geom.Point
}

type stream struct {
	dst       geom.Rect
	lastFrame *pixel.YV12Image
}

// New creates a client with a w x h local framebuffer.
func New(w, h int) *Client {
	return &Client{
		fb:      fb.New(w, h),
		streams: make(map[uint32]*stream),
	}
}

// FB returns the client's framebuffer (what the user sees).
func (c *Client) FB() *fb.Framebuffer { return c.fb }

// Stats returns a point-in-time snapshot of the instrumentation
// counters. Safe to call from any goroutine while Apply runs.
func (c *Client) Stats() *Stats { return c.stats.snapshot() }

// MsgCount and MsgBytes read a single per-type counter without
// building the full snapshot (telemetry scrape path).
func (c *Client) MsgCount(t wire.Type) int64 { return c.stats.msgs[t].Load() }

// MsgBytes returns wire bytes applied for one message type.
func (c *Client) MsgBytes(t wire.Type) int64 { return c.stats.bytes[t].Load() }

// FramesShown returns the number of video frames displayed.
func (c *Client) FramesShown() int64 { return c.stats.framesShown.Load() }

// BytesTotal returns the total wire bytes applied.
func (c *Client) BytesTotal() int64 {
	var n int64
	for t := range c.stats.bytes {
		n += c.stats.bytes[t].Load()
	}
	return n
}

// Apply executes one protocol message against the local framebuffer.
// Unknown or server-bound messages return an error; a well-behaved
// server never sends them.
func (c *Client) Apply(m wire.Message) error {
	c.stats.msgs[m.Type()].Add(1)
	c.stats.bytes[m.Type()].Add(int64(wire.WireSize(m)))

	switch v := m.(type) {
	case *wire.Raw:
		pix, err := v.Pixels()
		if err != nil {
			return fmt.Errorf("client: RAW decode: %w", err)
		}
		if v.Blend {
			c.fb.CompositeOver(v.Rect, pix, v.Rect.W())
		} else {
			c.fb.PutImage(v.Rect, pix, v.Rect.W())
		}
	case *wire.Copy:
		c.fb.Copy(v.Src, v.Dst)
	case *wire.SFill:
		c.fb.FillSolid(v.Rect, v.Color)
	case *wire.PFill:
		c.fb.FillTileAnchored(v.Rect, fb.NewTile(v.TileW, v.TileH, v.Tile), v.Ax, v.Ay)
	case *wire.Bitmap:
		bm := &fb.Bitmap{W: v.BitW, H: v.BitH, Bits: v.Bits}
		c.fb.FillBitmap(v.Rect, bm, v.Fg, v.Bg, v.Transparent)
	case *wire.VideoInit:
		c.streams[v.Stream] = &stream{dst: v.Dst}
	case *wire.VideoFrame:
		st, ok := c.streams[v.Stream]
		if !ok {
			return fmt.Errorf("client: frame for unknown stream %d", v.Stream)
		}
		img := pixel.UnmarshalYV12(v.W, v.H, v.Data)
		if img == nil {
			return fmt.Errorf("client: short video frame (%dx%d, %d bytes)", v.W, v.H, len(v.Data))
		}
		st.lastFrame = img
		c.fb.OverlayYV12(st.dst, img) // hardware overlay: convert + scale
		c.stats.framesShown.Add(1)
		c.stats.lastVideoTS.Store(v.PTS)
	case *wire.VideoMove:
		st, ok := c.streams[v.Stream]
		if !ok {
			return fmt.Errorf("client: move for unknown stream %d", v.Stream)
		}
		st.dst = v.Dst
		if st.lastFrame != nil {
			c.fb.OverlayYV12(st.dst, st.lastFrame)
		}
	case *wire.VideoEnd:
		delete(c.streams, v.Stream)
	case *wire.AudioData:
		c.stats.audioChunks.Add(1)
		c.stats.lastAudioTS.Store(v.PTS)
	case *wire.CursorSet:
		c.cursor.img = v.Pix
		c.cursor.w, c.cursor.h = v.W, v.H
		c.cursor.hot = geom.Point{X: v.HotX, Y: v.HotY}
	case *wire.CursorMove:
		c.cursor.pos = geom.Point{X: v.X, Y: v.Y}
	case *wire.ServerInit:
		// Informational: the session framebuffer may be larger than our
		// viewport; the server scales for us (§6).
	case *wire.DegradeNotice:
		// Quality-state feedback; Conn.Run records it, and a bare Client
		// applying a captured stream just tolerates it.
	case *wire.AuditProbe:
		// Integrity-audit probe (v4): Conn.Run answers it with tile
		// digests; a bare Client applying a captured stream tolerates it.
	case *wire.CacheStore:
		// Payload cache (v6): verify, paint, retain. A verification
		// failure returns *CacheMissError; Conn.Run reports it.
		return c.applyCacheStore(v)
	case *wire.CachePaint:
		// Payload cache (v6): replay a held payload.
		return c.applyCachePaint(v)
	default:
		return fmt.Errorf("client: unexpected message %v", m.Type())
	}
	return nil
}

// ApplyAll executes a batch in order, stopping at the first error.
func (c *Client) ApplyAll(msgs []wire.Message) error {
	for _, m := range msgs {
		if err := c.Apply(m); err != nil {
			return err
		}
	}
	return nil
}

// ActiveStreams returns the number of open video streams.
func (c *Client) ActiveStreams() int { return len(c.streams) }

// CursorPos returns the current cursor position.
func (c *Client) CursorPos() geom.Point { return c.cursor.pos }

// HasCursor reports whether a cursor image is installed.
func (c *Client) HasCursor() bool { return len(c.cursor.img) > 0 }

// ComposeCursor returns a copy of the framebuffer with the cursor
// overlay composited at its position — what the physical display shows.
func (c *Client) ComposeCursor() *fb.Framebuffer {
	out := c.fb.Clone()
	if len(c.cursor.img) == 0 {
		return out
	}
	r := geom.XYWH(c.cursor.pos.X-c.cursor.hot.X, c.cursor.pos.Y-c.cursor.hot.Y,
		c.cursor.w, c.cursor.h)
	out.CompositeOver(r, c.cursor.img, c.cursor.w)
	return out
}
