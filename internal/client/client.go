// Package client implements the THINC client: a simple, stateless
// input-output device (§3). It keeps a local framebuffer, executes the
// five protocol display commands against it using exactly the raster
// operations commodity display hardware accelerates, scales video
// streams in a (software) overlay, and collects the instrumentation the
// headless benchmark client used for the paper's measurements (§8.1).
package client

import (
	"fmt"

	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/wire"
)

// Stats is the client-side instrumentation: message and byte counts per
// command type, plus audio/video delivery accounting. When read through
// Conn.Stats, the connection lifecycle fields are populated too.
type Stats struct {
	Messages map[wire.Type]int
	Bytes    map[wire.Type]int64

	FramesShown int
	AudioChunks int
	LastVideoTS uint64
	LastAudioTS uint64

	// Connection lifecycle (Conn.Stats only).
	State      ConnState
	Reconnects int
	PongsSent  int
}

// Client is a THINC display client.
type Client struct {
	fb      *fb.Framebuffer
	streams map[uint32]*stream
	stats   Stats
	cursor  cursorState
}

// cursorState is the client-side hardware cursor: an overlay the
// display hardware composites above the framebuffer.
type cursorState struct {
	img  []pixel.ARGB
	w, h int
	hot  geom.Point
	pos  geom.Point
}

type stream struct {
	dst       geom.Rect
	lastFrame *pixel.YV12Image
}

// New creates a client with a w x h local framebuffer.
func New(w, h int) *Client {
	return &Client{
		fb:      fb.New(w, h),
		streams: make(map[uint32]*stream),
		stats: Stats{
			Messages: make(map[wire.Type]int),
			Bytes:    make(map[wire.Type]int64),
		},
	}
}

// FB returns the client's framebuffer (what the user sees).
func (c *Client) FB() *fb.Framebuffer { return c.fb }

// Stats returns the instrumentation counters.
func (c *Client) Stats() *Stats { return &c.stats }

// BytesTotal returns the total wire bytes applied.
func (c *Client) BytesTotal() int64 {
	var n int64
	for _, b := range c.stats.Bytes {
		n += b
	}
	return n
}

// Apply executes one protocol message against the local framebuffer.
// Unknown or server-bound messages return an error; a well-behaved
// server never sends them.
func (c *Client) Apply(m wire.Message) error {
	c.stats.Messages[m.Type()]++
	c.stats.Bytes[m.Type()] += int64(wire.WireSize(m))

	switch v := m.(type) {
	case *wire.Raw:
		pix, err := v.Pixels()
		if err != nil {
			return fmt.Errorf("client: RAW decode: %w", err)
		}
		if v.Blend {
			c.fb.CompositeOver(v.Rect, pix, v.Rect.W())
		} else {
			c.fb.PutImage(v.Rect, pix, v.Rect.W())
		}
	case *wire.Copy:
		c.fb.Copy(v.Src, v.Dst)
	case *wire.SFill:
		c.fb.FillSolid(v.Rect, v.Color)
	case *wire.PFill:
		c.fb.FillTileAnchored(v.Rect, fb.NewTile(v.TileW, v.TileH, v.Tile), v.Ax, v.Ay)
	case *wire.Bitmap:
		bm := &fb.Bitmap{W: v.BitW, H: v.BitH, Bits: v.Bits}
		c.fb.FillBitmap(v.Rect, bm, v.Fg, v.Bg, v.Transparent)
	case *wire.VideoInit:
		c.streams[v.Stream] = &stream{dst: v.Dst}
	case *wire.VideoFrame:
		st, ok := c.streams[v.Stream]
		if !ok {
			return fmt.Errorf("client: frame for unknown stream %d", v.Stream)
		}
		img := pixel.UnmarshalYV12(v.W, v.H, v.Data)
		if img == nil {
			return fmt.Errorf("client: short video frame (%dx%d, %d bytes)", v.W, v.H, len(v.Data))
		}
		st.lastFrame = img
		c.fb.OverlayYV12(st.dst, img) // hardware overlay: convert + scale
		c.stats.FramesShown++
		c.stats.LastVideoTS = v.PTS
	case *wire.VideoMove:
		st, ok := c.streams[v.Stream]
		if !ok {
			return fmt.Errorf("client: move for unknown stream %d", v.Stream)
		}
		st.dst = v.Dst
		if st.lastFrame != nil {
			c.fb.OverlayYV12(st.dst, st.lastFrame)
		}
	case *wire.VideoEnd:
		delete(c.streams, v.Stream)
	case *wire.AudioData:
		c.stats.AudioChunks++
		c.stats.LastAudioTS = v.PTS
	case *wire.CursorSet:
		c.cursor.img = v.Pix
		c.cursor.w, c.cursor.h = v.W, v.H
		c.cursor.hot = geom.Point{X: v.HotX, Y: v.HotY}
	case *wire.CursorMove:
		c.cursor.pos = geom.Point{X: v.X, Y: v.Y}
	case *wire.ServerInit:
		// Informational: the session framebuffer may be larger than our
		// viewport; the server scales for us (§6).
	default:
		return fmt.Errorf("client: unexpected message %v", m.Type())
	}
	return nil
}

// ApplyAll executes a batch in order, stopping at the first error.
func (c *Client) ApplyAll(msgs []wire.Message) error {
	for _, m := range msgs {
		if err := c.Apply(m); err != nil {
			return err
		}
	}
	return nil
}

// ActiveStreams returns the number of open video streams.
func (c *Client) ActiveStreams() int { return len(c.streams) }

// CursorPos returns the current cursor position.
func (c *Client) CursorPos() geom.Point { return c.cursor.pos }

// HasCursor reports whether a cursor image is installed.
func (c *Client) HasCursor() bool { return len(c.cursor.img) > 0 }

// ComposeCursor returns a copy of the framebuffer with the cursor
// overlay composited at its position — what the physical display shows.
func (c *Client) ComposeCursor() *fb.Framebuffer {
	out := c.fb.Clone()
	if len(c.cursor.img) == 0 {
		return out
	}
	r := geom.XYWH(c.cursor.pos.X-c.cursor.hot.X, c.cursor.pos.Y-c.cursor.hot.Y,
		c.cursor.w, c.cursor.h)
	out.CompositeOver(r, c.cursor.img, c.cursor.w)
	return out
}
