package client_test

import (
	"io"
	"sync"
	"testing"
	"time"

	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

// TestConnStatsConcurrentPolling hammers Conn.Stats and the telemetry
// registry from several goroutines while the update stream applies —
// the telemetry poller's access pattern. Run under -race this proves
// the stats path is lock-free-safe end to end.
func TestConnStatsConcurrentPolling(t *testing.T) {
	h := newHost(t, 64, 48)
	conn, err := pipeTo(t, h, "u", "p", 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()

	stop := make(chan struct{})
	var drawers sync.WaitGroup
	drawers.Add(1)
	go func() {
		defer drawers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.Do(func(d *xserver.Display) {
				w := d.CreateWindow(geom.XYWH(0, 0, 64, 48))
				d.FillRect(w, &xserver.GC{Fg: pixel.RGB(uint8(i), 0, 0)},
					geom.XYWH(i%32, i%24, 8, 8))
			})
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var pollers sync.WaitGroup
	for p := 0; p < 4; p++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for i := 0; i < 200; i++ {
				st := conn.Stats()
				_ = st.Messages[wire.TRaw] + st.Messages[wire.TSFill]
				_ = st.Reconnects + st.PongsSent
				_ = conn.State()
				conn.Telemetry().WritePrometheus(io.Discard)
			}
		}()
	}
	pollers.Wait()
	close(stop)
	drawers.Wait()

	waitFor(t, "updates applied", func() bool {
		return conn.Stats().Messages[wire.TRaw] > 0
	})
	if conn.Telemetry().NumSeries() == 0 {
		t.Fatal("connection telemetry registered no series")
	}
}
