package client

import (
	"errors"
	"strings"
	"testing"

	"thinc/internal/compress"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/wire"
)

// mkCacheStoreRaw builds a verifiable RAW CacheStore for pix at r.
func mkCacheStoreRaw(t *testing.T, r geom.Rect, pix []pixel.ARGB, blend bool) *wire.CacheStore {
	t.Helper()
	raw, err := wire.NewRaw(r, pix, r.W(), compress.CodecNone)
	if err != nil {
		t.Fatal(err)
	}
	return &wire.CacheStore{
		Digest: fb.CacheDigestRaw(r.W(), r.H(), blend, pix),
		Kind:   wire.CacheKindRaw,
		Rect:   r, Codec: raw.Codec, Blend: blend, Data: raw.Data,
	}
}

func cachePix(n int, seed uint8) []pixel.ARGB {
	pix := make([]pixel.ARGB, n)
	for i := range pix {
		pix[i] = pixel.RGB(uint8(i)+seed, seed, uint8(i*3))
	}
	return pix
}

func TestCacheStoreThenPaint(t *testing.T) {
	c := New(64, 32)
	c.EnableCache(64 << 10)
	if !c.CacheEnabled() {
		t.Fatal("cache not enabled")
	}

	r := geom.XYWH(0, 0, 8, 4)
	pix := cachePix(r.Area(), 10)
	st := mkCacheStoreRaw(t, r, pix, false)
	if err := c.Apply(st); err != nil {
		t.Fatalf("store: %v", err)
	}
	if c.FB().At(0, 0) != pix[0] {
		t.Fatal("CACHE_STORE did not paint")
	}
	if c.CacheEntries() != 1 || !c.CacheHolds(st.Digest) {
		t.Fatalf("store not retained: entries=%d", c.CacheEntries())
	}

	// Replay the held payload elsewhere; only geometry-exact paints hit.
	dst := geom.XYWH(20, 8, 8, 4)
	if err := c.Apply(&wire.CachePaint{Digest: st.Digest, Rect: dst}); err != nil {
		t.Fatalf("paint: %v", err)
	}
	if c.FB().At(20, 8) != pix[0] || c.FB().At(27, 11) != pix[len(pix)-1] {
		t.Fatal("CACHE_PAINT did not replay the payload")
	}
	st2 := c.Stats()
	if st2.CacheStored != 1 || st2.CachePainted != 1 {
		t.Fatalf("stats = %+v, want 1 store / 1 paint", st2)
	}
	if st2.CacheBytes != int64(len(pix)*4) {
		t.Fatalf("CacheBytes = %d, want %d", st2.CacheBytes, len(pix)*4)
	}
}

func TestCacheStoreBlendComposites(t *testing.T) {
	c := New(4, 1)
	c.EnableCache(4 << 10)
	if err := c.Apply(&wire.SFill{Rect: geom.XYWH(0, 0, 4, 1), Color: pixel.RGB(100, 100, 100)}); err != nil {
		t.Fatal(err)
	}
	r := geom.XYWH(0, 0, 2, 1)
	pix := []pixel.ARGB{pixel.PackARGB(128, 200, 0, 0), pixel.PackARGB(0, 9, 9, 9)}
	if err := c.Apply(mkCacheStoreRaw(t, r, pix, true)); err != nil {
		t.Fatal(err)
	}
	if got := c.FB().At(1, 0); got != pixel.RGB(100, 100, 100) {
		t.Fatalf("alpha-0 pixel overwrote destination: %08x", uint32(got))
	}
	// Replaying the blend entry must composite again, not copy.
	d := fb.CacheDigestRaw(2, 1, true, pix)
	if err := c.Apply(&wire.CachePaint{Digest: d, Rect: geom.XYWH(2, 0, 2, 1)}); err != nil {
		t.Fatal(err)
	}
	if got := c.FB().At(3, 0); got != pixel.RGB(100, 100, 100) {
		t.Fatalf("replayed blend overwrote destination: %08x", uint32(got))
	}
}

func TestCacheStoreBitmapRoundTrip(t *testing.T) {
	c := New(16, 8)
	c.EnableCache(4 << 10)
	r := geom.XYWH(0, 0, 8, 1)
	bits := []byte{0xAA} // alternating stipple
	st := &wire.CacheStore{
		Digest: fb.CacheDigestBitmap(r.W(), r.H(), pixel.RGB(9, 9, 9), pixel.RGB(1, 1, 1),
			false, 8, 1, bits),
		Kind: wire.CacheKindBitmap,
		Rect: r, Fg: pixel.RGB(9, 9, 9), Bg: pixel.RGB(1, 1, 1), BitW: 8, BitH: 1, Bits: bits,
	}
	if err := c.Apply(st); err != nil {
		t.Fatal(err)
	}
	if c.FB().At(0, 0) != pixel.RGB(9, 9, 9) || c.FB().At(1, 0) != pixel.RGB(1, 1, 1) {
		t.Fatal("bitmap store did not paint the stipple")
	}
	// The stored rows must be a copy: mutating the wire slice afterwards
	// (an in-process transport reusing its buffer) must not corrupt the
	// held entry.
	bits[0] = 0x00
	if err := c.Apply(&wire.CachePaint{Digest: st.Digest, Rect: geom.XYWH(8, 2, 8, 1)}); err != nil {
		t.Fatal(err)
	}
	if c.FB().At(8, 2) != pixel.RGB(9, 9, 9) {
		t.Fatal("held bitmap aliased the wire buffer")
	}
}

func TestCacheStoreCorruptedDigestMisses(t *testing.T) {
	c := New(16, 8)
	c.EnableCache(4 << 10)
	before := c.FB().At(0, 0)

	r := geom.XYWH(0, 0, 4, 2)
	st := mkCacheStoreRaw(t, r, cachePix(r.Area(), 30), false)
	st.Digest ^= 1 // in-flight corruption
	err := c.Apply(st)
	var miss *CacheMissError
	if !errors.As(err, &miss) {
		t.Fatalf("corrupted store returned %v, want *CacheMissError", err)
	}
	if miss.Digest != st.Digest || miss.Rect != r {
		t.Fatalf("miss = %+v, want the message's digest and rect", miss)
	}
	if !strings.Contains(miss.Error(), "cache miss") {
		t.Fatalf("unhelpful error string %q", miss.Error())
	}
	if c.FB().At(0, 0) != before {
		t.Fatal("corrupted store painted pixels")
	}
	if c.CacheEntries() != 0 {
		t.Fatal("corrupted store was retained")
	}

	bad := &wire.CacheStore{Digest: 7, Kind: 99, Rect: r}
	if err := c.Apply(bad); err == nil || errors.As(err, &miss) {
		t.Fatalf("unknown kind returned %v, want a hard error", err)
	}
}

func TestCachePaintMisses(t *testing.T) {
	c := New(16, 8)

	// Disabled store: every reference is a miss.
	var miss *CacheMissError
	err := c.Apply(&wire.CachePaint{Digest: 42, Rect: geom.XYWH(0, 0, 2, 2)})
	if !errors.As(err, &miss) {
		t.Fatalf("paint with cache disabled returned %v, want miss", err)
	}

	c.EnableCache(4 << 10)
	if err := c.Apply(&wire.CachePaint{Digest: 42, Rect: geom.XYWH(0, 0, 2, 2)}); !errors.As(err, &miss) {
		t.Fatalf("unknown digest returned %v, want miss", err)
	}

	r := geom.XYWH(0, 0, 4, 2)
	st := mkCacheStoreRaw(t, r, cachePix(r.Area(), 50), false)
	if err := c.Apply(st); err != nil {
		t.Fatal(err)
	}
	// Geometry disagreement: digest held, but the rect is not the
	// content shape.
	if err := c.Apply(&wire.CachePaint{Digest: st.Digest, Rect: geom.XYWH(0, 0, 2, 4)}); !errors.As(err, &miss) {
		t.Fatalf("mismatched geometry returned %v, want miss", err)
	}
}

func TestCacheEnableDisableLifecycle(t *testing.T) {
	c := New(16, 8)
	r := geom.XYWH(0, 0, 4, 2)
	st := mkCacheStoreRaw(t, r, cachePix(r.Area(), 70), false)

	// Disabled: a CACHE_STORE still paints (it is self-contained), just
	// isn't retained.
	if err := c.Apply(st); err != nil {
		t.Fatal(err)
	}
	if c.CacheEnabled() || c.CacheEntries() != 0 || c.CacheHolds(st.Digest) {
		t.Fatal("disabled cache retained a payload")
	}

	c.EnableCache(4 << 10)
	if err := c.Apply(st); err != nil {
		t.Fatal(err)
	}
	if c.CacheEntries() != 1 {
		t.Fatal("enabled cache did not retain")
	}

	// Same capacity: warm keep (the reattach path).
	c.EnableCache(4 << 10)
	if c.CacheEntries() != 1 {
		t.Fatal("re-enable at same capacity dropped the store")
	}
	// Different capacity: cold restart.
	c.EnableCache(8 << 10)
	if c.CacheEntries() != 0 {
		t.Fatal("capacity change kept stale entries")
	}
	// Zero: disabled again.
	c.EnableCache(0)
	if c.CacheEnabled() {
		t.Fatal("EnableCache(0) left the store active")
	}
	if st2 := c.Stats(); st2.CacheEntries != 0 || st2.CacheBytes != 0 {
		t.Fatalf("gauges not reset: %+v", st2)
	}
}

func TestCacheLRUEvictsEldest(t *testing.T) {
	c := New(64, 8)
	r := geom.XYWH(0, 0, 4, 2) // 32 bytes per entry
	c.EnableCache(64)          // room for exactly two entries

	var digests []uint64
	for i := 0; i < 3; i++ {
		st := mkCacheStoreRaw(t, r, cachePix(r.Area(), uint8(100+i)), false)
		if err := c.Apply(st); err != nil {
			t.Fatal(err)
		}
		digests = append(digests, st.Digest)
	}
	if c.CacheEntries() != 2 {
		t.Fatalf("entries = %d, want 2", c.CacheEntries())
	}
	if c.CacheHolds(digests[0]) {
		t.Fatal("eldest entry survived over-capacity insert")
	}
	if !c.CacheHolds(digests[1]) || !c.CacheHolds(digests[2]) {
		t.Fatal("newest entries evicted out of order")
	}
	// The evicted digest now misses — and the entry map stayed in
	// lockstep with the LRU index.
	var miss *CacheMissError
	if err := c.Apply(&wire.CachePaint{Digest: digests[0], Rect: r}); !errors.As(err, &miss) {
		t.Fatalf("evicted digest returned %v, want miss", err)
	}
}
