package client

import (
	"math/rand"
	"testing"
	"time"
)

// TestBackoffGrowsToCap: without jitter the schedule is a clean
// exponential that saturates at Max.
func TestBackoffGrowsToCap(t *testing.T) {
	p := ReconnectPolicy{
		Initial: 10 * time.Millisecond, Max: 80 * time.Millisecond,
		Multiplier: 2, Jitter: -1, // withDefaults resets negative to 0.2
	}
	// Disable jitter explicitly for exact values.
	p.Jitter = 0
	rnd := rand.New(rand.NewSource(1))

	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Backoff(i, rnd); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
}

// TestBackoffJitterBounds: with jitter J, every delay lands within
// [d*(1-J/2), d*(1+J/2)] of the nominal delay and never exceeds Max.
func TestBackoffJitterBounds(t *testing.T) {
	p := ReconnectPolicy{
		Initial: 100 * time.Millisecond, Max: time.Second,
		Multiplier: 2, Jitter: 0.4,
	}
	rnd := rand.New(rand.NewSource(42))
	for attempt := 0; attempt < 6; attempt++ {
		nominal := float64(100*time.Millisecond) * float64(int(1)<<attempt)
		if nominal > float64(time.Second) {
			nominal = float64(time.Second)
		}
		lo := time.Duration(nominal * 0.8)
		for trial := 0; trial < 200; trial++ {
			d := p.Backoff(attempt, rnd)
			if d < lo || float64(d) > nominal*1.2+1 || d > time.Second {
				t.Fatalf("Backoff(%d) = %v outside [%v, %v] (cap %v)",
					attempt, d, lo, time.Duration(nominal*1.2), time.Second)
			}
		}
	}
}

// TestBackoffDeterministicWithSeed: the same seed yields the same
// schedule — reconnect behaviour is reproducible in tests.
func TestBackoffDeterministicWithSeed(t *testing.T) {
	p := ReconnectPolicy{Jitter: 0.3}
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		if da, db := p.Backoff(i, a), p.Backoff(i, b); da != db {
			t.Fatalf("attempt %d: %v != %v under the same seed", i, da, db)
		}
	}
}

// TestBackoffDefaults: the zero policy is usable — positive, growing,
// capped delays.
func TestBackoffDefaults(t *testing.T) {
	var p ReconnectPolicy
	rnd := rand.New(rand.NewSource(1))
	prev := time.Duration(0)
	for i := 0; i < 12; i++ {
		d := p.Backoff(i, rnd)
		if d <= 0 {
			t.Fatalf("Backoff(%d) = %v", i, d)
		}
		if d > 5*time.Second {
			t.Fatalf("Backoff(%d) = %v exceeds the default cap", i, d)
		}
		if i < 4 && d < prev/2 {
			t.Fatalf("Backoff(%d) = %v shrank sharply from %v before the cap", i, d, prev)
		}
		prev = d
	}
}
