package client

import (
	"testing"

	"thinc/internal/compress"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/wire"
)

func TestApplyDisplayCommands(t *testing.T) {
	c := New(32, 32)

	if err := c.Apply(&wire.SFill{Rect: geom.XYWH(0, 0, 16, 16), Color: pixel.RGB(200, 0, 0)}); err != nil {
		t.Fatal(err)
	}
	if c.FB().At(8, 8) != pixel.RGB(200, 0, 0) {
		t.Fatal("SFILL not applied")
	}

	if err := c.Apply(&wire.Copy{Src: geom.XYWH(0, 0, 8, 8), Dst: geom.Point{X: 20, Y: 20}}); err != nil {
		t.Fatal(err)
	}
	if c.FB().At(24, 24) != pixel.RGB(200, 0, 0) {
		t.Fatal("COPY not applied")
	}

	if err := c.Apply(&wire.PFill{Rect: geom.XYWH(0, 16, 8, 8), TileW: 1, TileH: 1,
		Tile: []pixel.ARGB{pixel.RGB(0, 99, 0)}}); err != nil {
		t.Fatal(err)
	}
	if c.FB().At(4, 20) != pixel.RGB(0, 99, 0) {
		t.Fatal("PFILL not applied")
	}

	bits := []byte{0x80} // single set bit
	if err := c.Apply(&wire.Bitmap{Rect: geom.XYWH(30, 0, 1, 1), Fg: pixel.RGB(9, 9, 9),
		BitW: 1, BitH: 1, Bits: bits}); err != nil {
		t.Fatal(err)
	}
	if c.FB().At(30, 0) != pixel.RGB(9, 9, 9) {
		t.Fatal("BITMAP not applied")
	}

	pix := []pixel.ARGB{pixel.RGB(1, 2, 3), pixel.RGB(4, 5, 6)}
	raw, err := wire.NewRaw(geom.XYWH(10, 30, 2, 1), pix, 2, compress.CodecRLE)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Apply(raw); err != nil {
		t.Fatal(err)
	}
	if c.FB().At(10, 30) != pix[0] || c.FB().At(11, 30) != pix[1] {
		t.Fatal("RAW not applied")
	}
}

func TestApplyBlendRaw(t *testing.T) {
	c := New(2, 1)
	c.Apply(&wire.SFill{Rect: geom.XYWH(0, 0, 2, 1), Color: pixel.RGB(0, 0, 0)})
	pix := []pixel.ARGB{pixel.PackARGB(128, 255, 255, 255), pixel.PackARGB(0, 255, 255, 255)}
	raw, _ := wire.NewRaw(geom.XYWH(0, 0, 2, 1), pix, 2, compress.CodecNone)
	raw.Blend = true
	if err := c.Apply(raw); err != nil {
		t.Fatal(err)
	}
	if r := c.FB().At(0, 0).R(); r < 120 || r > 136 {
		t.Errorf("blend R=%d, want ~128", r)
	}
	if c.FB().At(1, 0) != pixel.RGB(0, 0, 0) {
		t.Error("transparent blend pixel changed destination")
	}
}

func TestVideoStreamLifecycle(t *testing.T) {
	c := New(64, 48)
	if err := c.Apply(&wire.VideoInit{Stream: 1, SrcW: 16, SrcH: 12,
		Dst: geom.XYWH(0, 0, 64, 48)}); err != nil {
		t.Fatal(err)
	}
	if c.ActiveStreams() != 1 {
		t.Fatal("stream not created")
	}
	img := pixel.NewYV12(16, 12)
	for i := range img.Y {
		img.Y[i] = 180
	}
	for i := range img.U {
		img.U[i], img.V[i] = 128, 128
	}
	if err := c.Apply(&wire.VideoFrame{Stream: 1, Seq: 1, PTS: 7, W: 16, H: 12,
		Data: img.Marshal(nil)}); err != nil {
		t.Fatal(err)
	}
	if c.Stats().FramesShown != 1 || c.Stats().LastVideoTS != 7 {
		t.Fatal("frame accounting wrong")
	}
	// Moving the stream redraws the last frame at the new position.
	if err := c.Apply(&wire.VideoMove{Stream: 1, Dst: geom.XYWH(32, 24, 32, 24)}); err != nil {
		t.Fatal(err)
	}
	if got := c.FB().At(40, 30); got.R() < 150 {
		t.Errorf("moved overlay missing: %v", got)
	}
	if err := c.Apply(&wire.VideoEnd{Stream: 1}); err != nil {
		t.Fatal(err)
	}
	if c.ActiveStreams() != 0 {
		t.Fatal("stream not torn down")
	}
}

func TestErrorPaths(t *testing.T) {
	c := New(8, 8)
	if err := c.Apply(&wire.VideoFrame{Stream: 42, W: 2, H: 2, Data: make([]byte, 6)}); err == nil {
		t.Error("frame for unknown stream accepted")
	}
	c.Apply(&wire.VideoInit{Stream: 1, SrcW: 2, SrcH: 2, Dst: geom.XYWH(0, 0, 8, 8)})
	if err := c.Apply(&wire.VideoFrame{Stream: 1, W: 2, H: 2, Data: []byte{1}}); err == nil {
		t.Error("short frame accepted")
	}
	if err := c.Apply(&wire.VideoMove{Stream: 9}); err == nil {
		t.Error("move for unknown stream accepted")
	}
	if err := c.Apply(&wire.Input{}); err == nil {
		t.Error("client-bound message accepted")
	}
	bad := &wire.Raw{Rect: geom.XYWH(0, 0, 2, 2), Codec: compress.CodecPNG, Data: []byte("junk")}
	if err := c.Apply(bad); err == nil {
		t.Error("corrupt RAW accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	c := New(8, 8)
	m := &wire.SFill{Rect: geom.XYWH(0, 0, 4, 4), Color: 1}
	c.Apply(m)
	c.Apply(&wire.AudioData{PTS: 5, Data: []byte{1, 2}})
	st := c.Stats()
	if st.Messages[wire.TSFill] != 1 || st.Bytes[wire.TSFill] != int64(wire.WireSize(m)) {
		t.Error("display stats wrong")
	}
	if st.AudioChunks != 1 || st.LastAudioTS != 5 {
		t.Error("audio stats wrong")
	}
	if c.BytesTotal() <= 0 {
		t.Error("total bytes missing")
	}
}

func TestApplyAllStopsOnError(t *testing.T) {
	c := New(8, 8)
	msgs := []wire.Message{
		&wire.SFill{Rect: geom.XYWH(0, 0, 2, 2), Color: 1},
		&wire.VideoMove{Stream: 77}, // error
		&wire.SFill{Rect: geom.XYWH(4, 4, 2, 2), Color: 2},
	}
	if err := c.ApplyAll(msgs); err == nil {
		t.Fatal("error swallowed")
	}
	if c.Stats().Messages[wire.TSFill] != 1 {
		t.Fatal("messages after the error should not apply")
	}
}
