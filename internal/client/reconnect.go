package client

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// BusyError reports a reattach refused by the server's storm admission
// gate (wire v7 AttachBusy): the server is alive but shedding resync
// load, and asks us to come back after RetryAfter. RunAuto honors the
// delay instead of its own backoff schedule, and the refusal does not
// count toward the failure streak — the server answered.
type BusyError struct {
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("client: server busy, retry after %v", e.RetryAfter)
}

// ReconnectPolicy tunes the auto-reconnect loop: exponential backoff
// with jitter, capped, giving up after MaxAttempts consecutive failed
// dials. The zero value picks sensible defaults.
type ReconnectPolicy struct {
	// Initial is the first backoff delay (default 50ms).
	Initial time.Duration
	// Max caps the backoff (default 5s).
	Max time.Duration
	// Multiplier grows the delay between attempts (default 2).
	Multiplier float64
	// Jitter is the fraction of the delay randomized, 0..1 (default
	// 0.2): each sleep is delay * (1 ± Jitter/2). Jitter desynchronizes
	// the reconnect stampede after a server restart.
	Jitter float64
	// MaxAttempts is how many consecutive failed dials are tolerated
	// before the connection is declared Gone (default 8).
	MaxAttempts int
	// HealthyGrace is how long a reconnected session must stay up
	// before the failure streak resets. A flapping link used to reset
	// the streak on every momentary success, turning MaxAttempts into
	// an unbounded retry budget; with the grace, a connection that dies
	// young keeps the streak and the loop still converges on Gone.
	// Default 1s; negative restores the old reset-on-any-success
	// behavior.
	HealthyGrace time.Duration
	// Seed makes the jitter deterministic for tests (0 uses a fixed
	// seed — reconnect schedules are reproducible by default).
	Seed int64
}

func (p ReconnectPolicy) withDefaults() ReconnectPolicy {
	if p.Initial <= 0 {
		p.Initial = 50 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.2
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.HealthyGrace == 0 {
		p.HealthyGrace = time.Second
	}
	return p
}

// Backoff returns the sleep before attempt (0-based), jittered by rnd.
func (p ReconnectPolicy) Backoff(attempt int, rnd *rand.Rand) time.Duration {
	p = p.withDefaults()
	d := float64(p.Initial)
	for i := 0; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if p.Jitter > 0 {
		// delay * (1 - J/2 + J*u), u uniform in [0,1).
		d *= 1 - p.Jitter/2 + p.Jitter*rnd.Float64()
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	return time.Duration(d)
}

// RunAuto runs the update stream like Run, but survives transport
// failures: when the stream breaks it enters StateReconnecting, redials
// with exponential backoff plus jitter, resumes the session with the
// saved ticket, and continues. It returns nil after Close, or the last
// stream error once MaxAttempts consecutive redials fail (the state is
// then StateGone). The failure streak persists across reconnects that
// die before HealthyGrace, so a flapping link cannot retry forever; an
// AttachBusy admission refusal sleeps the server-suggested delay and
// costs no streak. The connection must have been built by Dial or
// DialWith, so a dialer is available.
func (cn *Conn) RunAuto(policy ReconnectPolicy) error {
	policy = policy.withDefaults()
	seed := policy.Seed
	if seed == 0 {
		seed = 1
	}
	rnd := rand.New(rand.NewSource(seed))

	// streak counts failed dials, surviving a reconnect until the link
	// proves healthy; busy bounds honored AttachBusy waits per outage
	// (a pathological forever-busy server must still converge on Gone).
	streak := 0
	for {
		cn.setState(StateConnected)
		up := time.Now()
		err := cn.Run()
		if policy.HealthyGrace < 0 || time.Since(up) >= policy.HealthyGrace {
			streak = 0
		}
		if cn.isClosed() {
			cn.setState(StateGone)
			return nil
		}
		cn.mu.Lock()
		hasDialer := cn.dial != nil
		cn.mu.Unlock()
		if !hasDialer {
			cn.setState(StateGone)
			return err
		}

		cn.setState(StateReconnecting)
		reconnected := false
		busy := 0
		var busyWait time.Duration
		for streak < policy.MaxAttempts {
			if busyWait > 0 {
				time.Sleep(busyWait)
				busyWait = 0
			} else {
				time.Sleep(policy.Backoff(streak, rnd))
			}
			if cn.isClosed() {
				cn.setState(StateGone)
				return nil
			}
			rerr := cn.Redial()
			if rerr == nil {
				reconnected = true
				break
			}
			var be *BusyError
			if errors.As(rerr, &be) && busy < 4*policy.MaxAttempts {
				busy++
				cn.busyRejections.Add(1)
				busyWait = be.RetryAfter
				continue
			}
			streak++
		}
		if !reconnected {
			cn.setState(StateGone)
			return err
		}
		cn.reconnects.Add(1)
	}
}
