package client

import (
	"math/rand"
	"time"
)

// ReconnectPolicy tunes the auto-reconnect loop: exponential backoff
// with jitter, capped, giving up after MaxAttempts consecutive failed
// dials. The zero value picks sensible defaults.
type ReconnectPolicy struct {
	// Initial is the first backoff delay (default 50ms).
	Initial time.Duration
	// Max caps the backoff (default 5s).
	Max time.Duration
	// Multiplier grows the delay between attempts (default 2).
	Multiplier float64
	// Jitter is the fraction of the delay randomized, 0..1 (default
	// 0.2): each sleep is delay * (1 ± Jitter/2). Jitter desynchronizes
	// the reconnect stampede after a server restart.
	Jitter float64
	// MaxAttempts is how many consecutive failed dials are tolerated
	// before the connection is declared Gone (default 8).
	MaxAttempts int
	// Seed makes the jitter deterministic for tests (0 uses a fixed
	// seed — reconnect schedules are reproducible by default).
	Seed int64
}

func (p ReconnectPolicy) withDefaults() ReconnectPolicy {
	if p.Initial <= 0 {
		p.Initial = 50 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.2
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	return p
}

// Backoff returns the sleep before attempt (0-based), jittered by rnd.
func (p ReconnectPolicy) Backoff(attempt int, rnd *rand.Rand) time.Duration {
	p = p.withDefaults()
	d := float64(p.Initial)
	for i := 0; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if p.Jitter > 0 {
		// delay * (1 - J/2 + J*u), u uniform in [0,1).
		d *= 1 - p.Jitter/2 + p.Jitter*rnd.Float64()
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	return time.Duration(d)
}

// RunAuto runs the update stream like Run, but survives transport
// failures: when the stream breaks it enters StateReconnecting, redials
// with exponential backoff plus jitter, resumes the session with the
// saved ticket, and continues. It returns nil after Close, or the last
// stream error once MaxAttempts consecutive redials fail (the state is
// then StateGone). The connection must have been built by Dial or
// DialWith, so a dialer is available.
func (cn *Conn) RunAuto(policy ReconnectPolicy) error {
	policy = policy.withDefaults()
	seed := policy.Seed
	if seed == 0 {
		seed = 1
	}
	rnd := rand.New(rand.NewSource(seed))

	for {
		cn.setState(StateConnected)
		err := cn.Run()
		if cn.isClosed() {
			cn.setState(StateGone)
			return nil
		}
		cn.mu.Lock()
		hasDialer := cn.dial != nil
		cn.mu.Unlock()
		if !hasDialer {
			cn.setState(StateGone)
			return err
		}

		cn.setState(StateReconnecting)
		reconnected := false
		for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
			time.Sleep(policy.Backoff(attempt, rnd))
			if cn.isClosed() {
				cn.setState(StateGone)
				return nil
			}
			if rerr := cn.Redial(); rerr == nil {
				reconnected = true
				break
			}
		}
		if !reconnected {
			cn.setState(StateGone)
			return err
		}
		cn.reconnects.Add(1)
	}
}
