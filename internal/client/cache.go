package client

import (
	"fmt"

	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/payloadcache"
	"thinc/internal/pixel"
	"thinc/internal/wire"
)

// Client side of the wire-v6 content-addressed payload cache: the store
// itself. CACHE_STORE paints a payload and inserts it under its digest
// as a side effect; CACHE_PAINT replays a held payload at a new
// position for ~20 wire bytes. The store runs the same deterministic
// LRU as the server's model and mutates only at apply time — stream
// order — so as long as the stream arrives intact, both sides evict
// identically and no eviction traffic exists. Any disagreement
// (corrupted payload, digest the store does not hold) surfaces as a
// *CacheMissError; Conn.Run converts it into a CACHE_MISS report and
// the server repairs the region with plain RAW.

// DefaultCacheRequestKB is the payload cache capacity a connection
// requests when the caller does not choose one: 4 MB indexes the glyph
// runs, icons and toolbar blocks of a working desktop without
// burdening a thin device.
const DefaultCacheRequestKB = 4096

// CacheMissError reports a cache desync detected at apply time. The
// framebuffer was NOT painted for this message; the server must repaint
// Rect from the true framebuffer.
type CacheMissError struct {
	Digest uint64
	Rect   geom.Rect
}

func (e *CacheMissError) Error() string {
	return fmt.Sprintf("client: cache miss for digest %016x at %v", e.Digest, e.Rect)
}

// cacheEntry is one held payload with its apply semantics: everything
// needed to replay the original RAW or BITMAP at a new position.
type cacheEntry struct {
	kind uint8
	w, h int // content geometry; a paint rect must match exactly

	// CacheKindRaw.
	pix   []pixel.ARGB
	blend bool

	// CacheKindBitmap.
	bm          *fb.Bitmap
	fg, bg      pixel.ARGB
	transparent bool
}

// payloadStore pairs the deterministic LRU index with the payloads it
// tracks; the eviction callback keeps the two views in lockstep.
type payloadStore struct {
	lru     *payloadcache.LRU
	entries map[uint64]*cacheEntry
}

// EnableCache sizes the payload store; 0 disables it. Re-enabling at
// the capacity already in force keeps the warm store — the reattach
// path, where the server's retained model still matches our holdings.
// Any other capacity starts cold, mirroring Client.SetCacheSize on the
// server core.
func (c *Client) EnableCache(bytes int) {
	if bytes <= 0 {
		c.store = nil
		c.stats.cacheEntries.Store(0)
		c.stats.cacheBytes.Store(0)
		return
	}
	if c.store != nil && c.store.lru.Cap() == bytes {
		return
	}
	st := &payloadStore{entries: make(map[uint64]*cacheEntry)}
	st.lru = payloadcache.New(bytes, func(d uint64, _ int) { delete(st.entries, d) })
	c.store = st
	c.stats.cacheEntries.Store(0)
	c.stats.cacheBytes.Store(0)
}

// ResetCache discards any held payloads and starts a cold store at the
// given capacity (0 disables). The reattach path uses it when the
// server's ServerInit verdict is cold: the server restarted its model
// under a new epoch, so holdings — even at an unchanged capacity — no
// longer correspond to anything it will reference.
func (c *Client) ResetCache(bytes int) {
	c.store = nil
	c.EnableCache(bytes)
}

// CacheEnabled reports whether a payload store is active.
func (c *Client) CacheEnabled() bool { return c.store != nil }

// CacheEntries returns the number of payloads held.
func (c *Client) CacheEntries() int {
	if c.store == nil {
		return 0
	}
	return c.store.lru.Len()
}

// CacheHolds reports whether the store holds digest (tests and the
// convergence oracle peek with it).
func (c *Client) CacheHolds(digest uint64) bool {
	return c.store != nil && c.store.lru.Has(digest)
}

// cacheGauges refreshes the atomic occupancy gauges after a store
// mutation so Stats snapshots stay lock-free.
func (c *Client) cacheGauges() {
	if c.store == nil {
		return
	}
	c.stats.cacheEntries.Store(int64(c.store.lru.Len()))
	c.stats.cacheBytes.Store(int64(c.store.lru.Bytes()))
}

// applyCacheStore verifies, paints, and inserts one CACHE_STORE. The
// digest is recomputed over the decoded content with the same canonical
// recipe the server used (fb.CacheDigest*); a mismatch means the
// payload was corrupted in flight — nothing is painted or stored, and
// the returned *CacheMissError asks the server for a plain repaint.
// With the cache disabled the payload still paints (a CACHE_STORE is
// self-contained), it just isn't retained.
func (c *Client) applyCacheStore(v *wire.CacheStore) error {
	switch v.Kind {
	case wire.CacheKindRaw:
		raw := wire.Raw{Rect: v.Rect, Codec: v.Codec, Blend: v.Blend, Data: v.Data}
		pix, err := raw.Pixels()
		if err != nil {
			return &CacheMissError{Digest: v.Digest, Rect: v.Rect}
		}
		if fb.CacheDigestRaw(v.Rect.W(), v.Rect.H(), v.Blend, pix) != v.Digest {
			return &CacheMissError{Digest: v.Digest, Rect: v.Rect}
		}
		if v.Blend {
			c.fb.CompositeOver(v.Rect, pix, v.Rect.W())
		} else {
			c.fb.PutImage(v.Rect, pix, v.Rect.W())
		}
		if c.store != nil {
			// pix is owned (freshly decoded); the entry keeps it.
			c.store.entries[v.Digest] = &cacheEntry{kind: v.Kind,
				w: v.Rect.W(), h: v.Rect.H(), pix: pix, blend: v.Blend}
			c.store.lru.Insert(v.Digest, len(pix)*4)
			c.stats.cacheStored.Add(1)
			c.cacheGauges()
		}
	case wire.CacheKindBitmap:
		if fb.CacheDigestBitmap(v.Rect.W(), v.Rect.H(), v.Fg, v.Bg, v.Transparent,
			v.BitW, v.BitH, v.Bits) != v.Digest {
			return &CacheMissError{Digest: v.Digest, Rect: v.Rect}
		}
		bm := &fb.Bitmap{W: v.BitW, H: v.BitH, Bits: v.Bits}
		c.fb.FillBitmap(v.Rect, bm, v.Fg, v.Bg, v.Transparent)
		if c.store != nil {
			// Copy the rows: in-process transports hand us slices that
			// alias server command state.
			own := &fb.Bitmap{W: v.BitW, H: v.BitH, Bits: append([]byte(nil), v.Bits...)}
			c.store.entries[v.Digest] = &cacheEntry{kind: v.Kind,
				w: v.Rect.W(), h: v.Rect.H(), bm: own,
				fg: v.Fg, bg: v.Bg, transparent: v.Transparent}
			c.store.lru.Insert(v.Digest, len(own.Bits))
			c.stats.cacheStored.Add(1)
			c.cacheGauges()
		}
	default:
		return fmt.Errorf("client: unknown cache entry kind %d", v.Kind)
	}
	return nil
}

// applyCachePaint replays a held payload at v.Rect. An unknown digest
// or a geometry disagreement (the digest covers content dimensions, so
// a well-behaved server can never cause one) paints nothing and
// reports a miss.
func (c *Client) applyCachePaint(v *wire.CachePaint) error {
	if c.store == nil {
		return &CacheMissError{Digest: v.Digest, Rect: v.Rect}
	}
	e, ok := c.store.entries[v.Digest]
	if !ok || e.w != v.Rect.W() || e.h != v.Rect.H() {
		return &CacheMissError{Digest: v.Digest, Rect: v.Rect}
	}
	c.store.lru.Touch(v.Digest)
	var payloadBytes int
	switch e.kind {
	case wire.CacheKindRaw:
		if e.blend {
			c.fb.CompositeOver(v.Rect, e.pix, e.w)
		} else {
			c.fb.PutImage(v.Rect, e.pix, e.w)
		}
		payloadBytes = len(e.pix) * 4
	case wire.CacheKindBitmap:
		c.fb.FillBitmap(v.Rect, e.bm, e.fg, e.bg, e.transparent)
		payloadBytes = len(e.bm.Bits)
	}
	c.stats.cachePainted.Add(1)
	// Bytes the replay kept off the wire: the held payload minus the
	// paint reference that stood in for it.
	if saved := payloadBytes - wire.WireSize(v); saved > 0 {
		c.stats.cacheSaved.Add(int64(saved))
	}
	return nil
}
