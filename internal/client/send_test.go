package client

import (
	"net"
	"testing"
	"time"

	"thinc/internal/cipher"
	"thinc/internal/wire"
)

// deadlineConn records SetWriteDeadline calls and swallows writes. The
// embedded nil net.Conn panics on anything send() must not touch.
type deadlineConn struct {
	net.Conn
	deadlines []time.Time
	written   int
}

func (c *deadlineConn) Write(p []byte) (int, error) {
	c.written += len(p)
	return len(p), nil
}

func (c *deadlineConn) SetWriteDeadline(t time.Time) error {
	c.deadlines = append(c.deadlines, t)
	return nil
}

func sendConn(t *testing.T, wt, rt time.Duration) (*Conn, *deadlineConn) {
	t.Helper()
	stub := &deadlineConn{}
	enc, err := cipher.NewStreamConn(stub, []byte("0123456789abcdef"), false)
	if err != nil {
		t.Fatal(err)
	}
	return &Conn{nc: stub, enc: enc, WriteTimeout: wt, ReadTimeout: rt}, stub
}

func TestSendSetsWriteDeadline(t *testing.T) {
	cn, stub := sendConn(t, time.Second, 0)
	before := time.Now()
	if err := cn.send(&wire.Pong{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if len(stub.deadlines) != 1 {
		t.Fatalf("SetWriteDeadline called %d times, want 1", len(stub.deadlines))
	}
	d := stub.deadlines[0]
	if d.Before(before.Add(time.Second)) || d.After(before.Add(2*time.Second)) {
		t.Fatalf("deadline %v not ~1s out from %v", d, before)
	}
	if stub.written == 0 {
		t.Fatal("nothing written")
	}
}

func TestSendDeadlineFallsBackToReadTimeout(t *testing.T) {
	cn, stub := sendConn(t, 0, 3*time.Second)
	before := time.Now()
	if err := cn.send(&wire.Pong{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if len(stub.deadlines) != 1 {
		t.Fatalf("SetWriteDeadline called %d times, want 1", len(stub.deadlines))
	}
	if d := stub.deadlines[0]; d.Before(before.Add(3 * time.Second)) {
		t.Fatalf("fallback deadline %v shorter than ReadTimeout", d)
	}
}

func TestSendNoTimeoutsMeansNoDeadline(t *testing.T) {
	cn, stub := sendConn(t, 0, 0)
	if err := cn.send(&wire.Pong{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if len(stub.deadlines) != 0 {
		t.Fatalf("deadline set with both timeouts zero: %v", stub.deadlines)
	}
}
