// Package thinc is a from-scratch reproduction of THINC, the virtual
// display architecture for thin-client computing (Baratto, Kim, Nieh —
// SOSP 2005).
//
// THINC virtualizes the display at the video device driver interface:
// a virtual driver intercepts drawing commands below an unmodified
// window system, translates them — preserving their semantics — into a
// five-command wire protocol (RAW, COPY, SFILL, PFILL, BITMAP), and
// pushes them to simple, stateless clients. The translation layer
// tracks offscreen drawing so double-buffered interfaces ship as
// commands instead of pixels, video streams pass through in YV12 to a
// client overlay, a shortest-remaining-size-first scheduler with a
// real-time queue orders delivery, and the server resamples updates
// for small-screen clients.
//
// # Quick start
//
// Host a session, draw through the window system, serve clients:
//
//	accounts := thinc.NewAccounts()
//	accounts.Add("alice", "secret")
//	host := thinc.NewHost(1024, 768, thinc.NewAuthenticator("alice", accounts),
//		thinc.HostOptions{Core: thinc.CoreOptions{RawCodec: thinc.CodecPNG}})
//	go host.Serve(listener)
//	host.Do(func(d *thinc.Display) {
//		win := d.CreateWindow(thinc.XYWH(0, 0, 1024, 768))
//		d.FillRect(win, &thinc.GC{Fg: thinc.RGB(245, 245, 250)}, win.Bounds())
//	})
//
// Connect a client:
//
//	conn, err := thinc.Dial(addr, "alice", "secret", 1024, 768)
//	go conn.Run()
//	fb := conn.Snapshot() // the pixels the user sees
//
// The packages under internal/ hold the implementation: the geometry
// and raster substrate, the wire protocol, the translation core, the
// miniature window system, the discrete-event network simulator, the
// comparison systems, and the benchmark harness that regenerates every
// figure of the paper's evaluation (see cmd/thinc-bench).
package thinc

import (
	"io"
	"net"

	"thinc/internal/auth"
	"thinc/internal/bench"
	"thinc/internal/client"
	"thinc/internal/compress"
	"thinc/internal/core"
	"thinc/internal/driver"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/server"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

// Geometry.
type (
	// Point is an integer screen coordinate.
	Point = geom.Point
	// Rect is a half-open screen rectangle.
	Rect = geom.Rect
	// Region is a set of pixels as disjoint rectangles.
	Region = geom.Region
)

// XYWH builds a rectangle from origin and size.
func XYWH(x, y, w, h int) Rect { return geom.XYWH(x, y, w, h) }

// Pixels and surfaces.
type (
	// ARGB is a 32-bit pixel with alpha.
	ARGB = pixel.ARGB
	// Framebuffer is a software pixel surface.
	Framebuffer = fb.Framebuffer
	// Tile is a repeating pattern for PFILL.
	Tile = fb.Tile
	// Bitmap is a 1-bit stipple for BITMAP.
	Bitmap = fb.Bitmap
	// YV12Image is a planar video frame.
	YV12Image = pixel.YV12Image
)

// RGB builds an opaque pixel.
func RGB(r, g, b uint8) ARGB { return pixel.RGB(r, g, b) }

// PackARGB builds a pixel with alpha.
func PackARGB(a, r, g, b uint8) ARGB { return pixel.PackARGB(a, r, g, b) }

// Window system (the substrate THINC plugs into).
type (
	// Display is a window-system instance.
	Display = xserver.Display
	// Window is an on-screen drawable.
	Window = xserver.Window
	// Pixmap is an offscreen drawable.
	Pixmap = xserver.Pixmap
	// GC is drawing state.
	GC = xserver.GC
	// VideoPort is the XVideo-like stream interface.
	VideoPort = xserver.VideoPort
)

// Translation core.
type (
	// CoreOptions configures the translation layer.
	CoreOptions = core.Options
	// CoreServer is the virtual display driver (embed in custom hosts).
	CoreServer = core.Server
	// CoreClient is a per-connection command buffer handle.
	CoreClient = core.Client
)

// RAW payload codecs.
const (
	CodecNone = compress.CodecNone
	CodecRLE  = compress.CodecRLE
	CodecPNG  = compress.CodecPNG
	CodecZlib = compress.CodecZlib
)

// NewCoreServer builds a bare translation core; attach it to a display
// with NewDisplay for in-process use without a network.
func NewCoreServer(opts CoreOptions) *CoreServer { return core.NewServer(opts) }

// NewDisplay creates a window system with the given driver attached.
// Pass a *CoreServer to intercept drawing the THINC way, or NopDriver
// for a purely local display.
func NewDisplay(w, h int, drv Driver) *Display { return xserver.NewDisplay(w, h, drv) }

// Driver is the video device driver interface THINC virtualizes (§3):
// implement it to observe the drawing command stream below the window
// system.
type Driver = driver.Driver

// NopDriver ignores every driver call — the local display path.
type NopDriver = driver.Nop

// Authentication.
type (
	// Accounts is the user database.
	Accounts = auth.Accounts
	// Authenticator gates session access.
	Authenticator = auth.Authenticator
)

// NewAccounts returns an empty user database.
func NewAccounts() *Accounts { return auth.NewAccounts() }

// NewAuthenticator gates a session owned by owner.
func NewAuthenticator(owner string, accounts *Accounts) *Authenticator {
	return auth.NewAuthenticator(owner, accounts)
}

// Server side.
type (
	// Host owns a display session and serves clients.
	Host = server.Host
	// HostOptions configures a Host.
	HostOptions = server.Options
)

// NewHost creates a session of the given geometry.
func NewHost(w, h int, gate *Authenticator, opts HostOptions) *Host {
	return server.NewHost(w, h, gate, opts)
}

// Client side.
type (
	// Conn is a connected display client.
	Conn = client.Conn
	// Client executes protocol messages against a framebuffer.
	Client = client.Client
	// InputEvent is a user input message.
	InputEvent = wire.Input
)

// Input kinds.
const (
	InputMouseMove   = wire.InputMouseMove
	InputMouseButton = wire.InputMouseButton
	InputKey         = wire.InputKey
)

// Dial connects and authenticates to a THINC server.
func Dial(addr, user, secret string, viewW, viewH int) (*Conn, error) {
	return client.Dial(addr, user, secret, viewW, viewH)
}

// Handshake runs the client handshake over an established transport
// (in-memory pipes, custom tunnels).
func Handshake(nc net.Conn, user, secret string, viewW, viewH int) (*Conn, error) {
	return client.Handshake(nc, user, secret, viewW, viewH)
}

// NewClient builds a local message-executing client (in-process use).
func NewClient(w, h int) *Client { return client.New(w, h) }

// Session recording (the §1 mirroring/support use case).
type (
	// Recorder captures a session's command stream to an io.Writer;
	// obtain one from Host.Record.
	Recorder = server.Recorder
	// Record is one timestamped entry of a recording.
	Record = server.Record
)

// ReadRecord decodes the next recording entry; io.EOF marks the end.
func ReadRecord(r io.Reader) (Record, error) { return server.ReadRecord(r) }

// Experiments exposes the paper-evaluation harness (cmd/thinc-bench is
// a thin wrapper around it).
type Experiments = bench.Suite

// NewExperiments returns a harness; pages/avSeconds of 0 run the full
// paper-scale workloads.
func NewExperiments(pages int, avSeconds float64) *Experiments {
	return bench.NewSuite(pages, avSeconds)
}
