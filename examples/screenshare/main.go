// Screenshare demonstrates the collaboration uses of §1: one session,
// multiple viewers. The owner authenticates with their account; a guest
// joins with the shared-session password; a recorder captures the whole
// session for later replay. All three observers converge to identical
// pixels, and the guest's mouse moves the shared cursor everyone sees.
//
// Run with:
//
//	go run ./examples/screenshare
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"thinc/internal/auth"
	"thinc/internal/client"
	"thinc/internal/compress"
	"thinc/internal/core"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/server"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

func main() {
	accounts := auth.NewAccounts()
	accounts.Add("host", "hostpw")
	gate := auth.NewAuthenticator("host", accounts)
	gate.SetSessionPassword("join-me") // enable peers

	h := server.NewHost(480, 320, gate, server.Options{
		Core:          core.Options{RawCodec: compress.CodecPNG},
		FlushInterval: time.Millisecond,
	})

	// A recorder is a third, file-bound viewer.
	var recording lockedBuffer
	rec := h.Record(&recording)

	connect := func(user, pass string) *client.Conn {
		a, b := net.Pipe()
		go h.ServeConn(a)
		c, err := client.Handshake(b, user, pass, 480, 320)
		if err != nil {
			log.Fatalf("%s: %v", user, err)
		}
		go c.Run()
		return c
	}
	owner := connect("host", "hostpw")
	guest := connect("guest", "join-me")

	// Host application draws a small whiteboard.
	h.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, 480, 320))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(252, 252, 248)}, win.Bounds())
		d.DrawText(win, &xserver.GC{Fg: pixel.RGB(30, 30, 30)}, 12, 12,
			"shared whiteboard")
		cursor := make([]pixel.ARGB, 6*6)
		for i := range cursor {
			cursor[i] = pixel.PackARGB(220, 20, 20, 200)
		}
		d.SetCursor(cursor, 6, 6, geom.Point{})
	})

	// The guest scribbles: input events move the shared cursor, the host
	// application draws where they point.
	for i := 0; i < 8; i++ {
		x, y := 60+i*40, 120+(i%2)*40
		guest.SendInput(&wire.Input{Kind: wire.InputMouseButton, X: x, Y: y, Code: 1, Press: true})
		h.Do(func(d *xserver.Display) {
			win := d.CreateWindow(geom.XYWH(0, 0, 480, 320))
			d.FillRect(win, &xserver.GC{Fg: pixel.RGB(40, 120, 220)}, geom.XYWH(x-6, y-6, 12, 12))
		})
	}

	// Everyone converges.
	want := h.ScreenChecksum()
	waitUntil(func() bool {
		return owner.Snapshot().Checksum() == want && guest.Snapshot().Checksum() == want
	})
	fmt.Printf("owner  screen: %08x\n", owner.Snapshot().Checksum())
	fmt.Printf("guest  screen: %08x\n", guest.Snapshot().Checksum())
	fmt.Printf("host   screen: %08x (all equal: %v)\n", want,
		owner.Snapshot().Checksum() == want && guest.Snapshot().Checksum() == want)

	// Stop recording and replay it into a fourth viewer.
	time.Sleep(20 * time.Millisecond)
	if err := rec.Close(); err != nil {
		log.Fatalf("recorder: %v", err)
	}
	replayed := client.New(480, 320)
	r := recording.Reader()
	n := 0
	for {
		recd, err := server.ReadRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatalf("replay: %v", err)
		}
		if err := replayed.Apply(recd.Msg); err != nil {
			log.Fatalf("replay apply: %v", err)
		}
		n++
	}
	fmt.Printf("replayed recording: %d commands, screen %08x (match: %v)\n",
		n, replayed.FB().Checksum(), replayed.FB().Checksum() == want)

	owner.Close()
	guest.Close()
}

func waitUntil(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !cond() {
		time.Sleep(2 * time.Millisecond)
	}
}

// lockedBuffer guards the recording buffer against the recorder
// goroutine.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Reader() io.Reader {
	b.mu.Lock()
	defer b.mu.Unlock()
	return bytes.NewReader(b.buf.Bytes())
}
