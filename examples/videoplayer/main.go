// Videoplayer reproduces the paper's A/V experiment in miniature: a
// 352x240 24 fps clip played full-screen through THINC's native video
// path (YV12 frames scaled by the client overlay) and through systems
// that must push software-rendered frames, over LAN and WAN.
//
// Run with:
//
//	go run ./examples/videoplayer
package main

import (
	"fmt"

	"thinc/internal/baseline"
	"thinc/internal/bench"
)

func main() {
	const seconds = 10
	systems := []baseline.System{
		baseline.Local(),
		baseline.THINC(),
		baseline.SunRay(),
		baseline.VNC(),
		baseline.NX(),
	}
	for _, cfg := range []bench.Config{bench.LANDesktop(), bench.WANDesktop()} {
		fmt.Printf("full-screen A/V playback, %s (%ds of the clip)\n", cfg.Link, seconds)
		fmt.Printf("  %-8s %9s %8s %9s\n", "system", "quality", "frames", "Mbps")
		for _, sys := range systems {
			r := bench.RunAV(sys, cfg, seconds)
			fmt.Printf("  %-8s %8.1f%% %8d %9.2f\n", sys.Name(), r.Quality*100, r.Frames, r.Mbps)
		}
		fmt.Println()
	}
	fmt.Println("THINC forwards decoder-output YV12 straight to the client overlay:")
	fmt.Println("full frame rate at ~24 Mbps. Systems without a video path push")
	fmt.Println("full-screen pixel updates and drop most frames at the server.")
}
