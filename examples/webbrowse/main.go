// Webbrowse reproduces the paper's headline web experiment in
// miniature: the i-Bench-style page sequence loaded through THINC and
// through a VNC-class scraper over an emulated cross-country WAN
// (100 Mbps, 66 ms RTT), with per-page latency and data side by side.
//
// Run with:
//
//	go run ./examples/webbrowse
package main

import (
	"fmt"

	"thinc/internal/baseline"
	"thinc/internal/bench"
)

func main() {
	const pages = 12
	cfg := bench.WANDesktop()
	fmt.Printf("web browsing over %s\n\n", cfg.Link)

	thinc := bench.RunWeb(baseline.THINC(), cfg, pages)
	vnc := bench.RunWeb(baseline.VNC(), cfg, pages)

	fmt.Printf("%-6s  %-22s  %-22s\n", "", "THINC", "VNC")
	fmt.Printf("%-6s  %10s %10s  %10s %10s\n", "page", "ms", "KB", "ms", "KB")
	for i := range thinc.Pages {
		tp, vp := thinc.Pages[i], vnc.Pages[i]
		tag := ""
		if tp.ImageHeavy {
			tag = " (image-heavy)"
		}
		fmt.Printf("%-6d  %10.0f %10.0f  %10.0f %10.0f%s\n", i+1,
			tp.LatencyFull.Millis(), float64(tp.Bytes)/1024,
			vp.LatencyFull.Millis(), float64(vp.Bytes)/1024, tag)
	}
	fmt.Printf("\naverage: THINC %.0f ms / %.0f KB per page, VNC %.0f ms / %.0f KB per page\n",
		thinc.AvgLatencyFull().Millis(), float64(thinc.AvgBytes())/1024,
		vnc.AvgLatencyFull().Millis(), float64(vnc.AvgBytes())/1024)
	fmt.Println("\nTHINC ships semantic commands (fills, glyphs, copies); the scraper")
	fmt.Println("re-compresses pixels and pays a round trip per update batch.")
}
