// Pdaresize demonstrates server-side screen scaling (§6): the same
// 1024x768 session viewed by a full-size desktop client and by a
// 320x240 PDA client. The server resamples every update — RAW via
// Fant's algorithm, tiles resized, BITMAP converted to anti-aliased
// RAW, SFILL geometry-only — so the PDA pays PDA bandwidth.
//
// Run with:
//
//	go run ./examples/pdaresize
package main

import (
	"fmt"

	"thinc/internal/client"
	"thinc/internal/compress"
	"thinc/internal/core"
	"thinc/internal/geom"
	"thinc/internal/workload"
	"thinc/internal/xserver"
)

func main() {
	srv := core.NewServer(core.Options{RawCodec: compress.CodecPNG})
	dpy := xserver.NewDisplay(1024, 768, srv)

	desktop := srv.AttachClient(1024, 768)
	pda := srv.AttachClient(320, 240)
	desktopFB := client.New(1024, 768)
	pdaFB := client.New(320, 240)
	drain := func() {
		if err := desktopFB.ApplyAll(desktop.FlushAll()); err != nil {
			panic(err)
		}
		if err := pdaFB.ApplyAll(pda.FlushAll()); err != nil {
			panic(err)
		}
	}
	drain()

	// Render a few benchmark pages; both clients track the session.
	br := &workload.Browser{
		Dpy: dpy, Win: dpy.CreateWindow(geom.XYWH(0, 0, 1024, 768)),
		DoubleBuffer: true,
	}
	desktopBase, pdaBase := desktopFB.BytesTotal(), pdaFB.BytesTotal()
	for i := 0; i < 5; i++ {
		br.RenderPage(i)
		drain()
	}
	fmt.Println("same session, two viewports:")
	fmt.Printf("  desktop 1024x768: %6.0f KB for 5 pages\n",
		float64(desktopFB.BytesTotal()-desktopBase)/1024)
	fmt.Printf("  PDA      320x240: %6.0f KB for 5 pages (server-side Fant resampling)\n",
		float64(pdaFB.BytesTotal()-pdaBase)/1024)

	// Full-screen video: the server resamples frames by the viewport
	// ratio before transmission (§8: ~24 Mbps down to ~3.5 Mbps).
	clip := workload.DefaultClip()
	vp := dpy.CreateVideoPort(clip.W, clip.H, dpy.Bounds())
	dBase, pBase := desktopFB.BytesTotal(), pdaFB.BytesTotal()
	const frames = 24
	for i := 0; i < frames; i++ {
		vp.PutFrame(clip.Frame(i), clip.PTS(i))
		drain()
	}
	vp.Close()
	drain()
	fmt.Println("\none second of full-screen video:")
	fmt.Printf("  desktop: %5.1f Mbit  (352x240 YV12 frames)\n",
		float64(desktopFB.BytesTotal()-dBase)*8/1e6)
	fmt.Printf("  PDA:     %5.1f Mbit  (frames downsampled by the viewport ratio)\n",
		float64(pdaFB.BytesTotal()-pBase)*8/1e6)

	// The PDA user zooms in: the client reports a larger viewport and
	// the server refreshes it at the new scale.
	pda.Resize(640, 480)
	pdaZoom := client.New(640, 480)
	if err := pdaZoom.ApplyAll(pda.FlushAll()); err != nil {
		panic(err)
	}
	fmt.Printf("\nafter zooming the PDA to 640x480, refresh sent %.0f KB; center pixel %v\n",
		float64(pdaZoom.BytesTotal())/1024, colorAt(pdaZoom, 320, 240))
}

func colorAt(c *client.Client, x, y int) string {
	p := c.FB().At(x, y)
	return fmt.Sprintf("#%02x%02x%02x", p.R(), p.G(), p.B())
}
