// Quickstart: a complete THINC session in one process — a server
// hosting a virtual display, a client connected over an in-memory
// network connection, drawing flowing through the translation layer
// as protocol commands, and a pixel-exact check at the end.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"thinc/internal/auth"
	"thinc/internal/client"
	"thinc/internal/compress"
	"thinc/internal/core"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/server"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

func main() {
	// 1. A server session: 640x480 display, PNG-compressed RAW updates,
	//    one user account.
	accounts := auth.NewAccounts()
	accounts.Add("alice", "secret")
	gate := auth.NewAuthenticator("alice", accounts)
	host := server.NewHost(640, 480, gate, server.Options{
		Core:          core.Options{RawCodec: compress.CodecPNG},
		FlushInterval: time.Millisecond,
	})

	// 2. Connect a client over an in-memory pipe (swap in net.Dial for
	//    a real network — see cmd/thinc-client).
	serverSide, clientSide := net.Pipe()
	go host.ServeConn(serverSide)
	conn, err := client.Handshake(clientSide, "alice", "secret", 640, 480)
	if err != nil {
		log.Fatalf("handshake: %v", err)
	}
	go conn.Run()
	fmt.Printf("connected to a %dx%d session\n", conn.ServerW, conn.ServerH)

	// 3. An application draws through the window system: fills, text,
	//    and Mozilla-style offscreen double buffering.
	host.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, 640, 480))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(245, 245, 250)}, win.Bounds())
		d.DrawText(win, &xserver.GC{Fg: pixel.RGB(10, 10, 10)}, 20, 20,
			"hello from the thin side")

		// Prepare a card offscreen, then flip it onscreen: THINC's
		// offscreen awareness ships the *commands*, not the pixels.
		card := d.CreatePixmap(200, 100)
		d.FillRect(card, &xserver.GC{Fg: pixel.RGB(70, 120, 220)}, card.Bounds())
		d.DrawText(card, &xserver.GC{Fg: pixel.RGB(255, 255, 255)}, 10, 10, "offscreen card")
		d.CopyArea(win, card, card.Bounds(), geom.Point{X: 60, Y: 80})
		d.FreePixmap(card)
	})

	// 4. The client converges to the same pixels.
	want := host.ScreenChecksum()
	for i := 0; i < 500; i++ {
		if conn.Snapshot().Checksum() == want {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	got := conn.Snapshot().Checksum()
	fmt.Printf("server screen %08x, client screen %08x, match=%v\n",
		want, got, want == got)

	// 5. What went over the wire: semantic commands, not a screenshot.
	st := conn.Stats()
	for _, ty := range []wire.Type{wire.TSFill, wire.TBitmap, wire.TRaw, wire.TCopy} {
		if st.Messages[ty] > 0 {
			fmt.Printf("  %-7v x%-4d %6d bytes\n", ty, st.Messages[ty], st.Bytes[ty])
		}
	}
	conn.Close()
}
