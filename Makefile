GO ?= go

.PHONY: all build vet test race check cover bench-snapshot bench-smoke bench-e2e-smoke bench-cache-smoke bench-reattach-smoke bench-load-smoke fuzz-smoke golden-regen soak

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet race

# Coverage gate: per-package statement coverage must stay at or above
# the committed floors (coverage_floors.txt). -short skips the
# seconds-long chaos schedules — they have their own CI job and their
# wall-clock deadlines are unreliable under atomic instrumentation.
cover:
	$(GO) test -short ./... -coverprofile=coverage.out -covermode=atomic
	$(GO) run ./cmd/covercheck -profile coverage.out -floors coverage_floors.txt

# Chaos soak: randomized fault schedules PLUS randomized
# silent-corruption schedules against a live server/client pair under
# the race detector, each ending in the framebuffer-convergence oracle
# (see docs/ROBUSTNESS.md). -run 'TestChaos' picks up both families
# (TestChaosSoak and TestChaosCorruptionSoak). Every schedule logs its
# seed, so a failure replays exactly; override with THINC_CHAOS_SEED.
# Bounded wall-clock via the test timeout.
soak:
	THINC_CHAOS_SOAK=100 $(GO) test ./internal/chaos/ -race -count=1 -timeout 15m -run 'TestChaos'

# Quick benchmark run that dumps THINC's per-command-type byte counts,
# core telemetry series, encode pool counters, and integrity-audit
# counters to BENCH_pr6.json.
bench-snapshot:
	$(GO) run ./cmd/thinc-bench -quick -fig 2 -telemetry-out BENCH_pr6.json

# Encode fast-path smoke: the zero-allocation assertions plus one
# iteration of every wire benchmark, cheap enough for CI. The *ZeroAlloc
# tests fail if the flush path regresses to allocating. The fan-out
# benchmark rides along: B/op staying flat from viewers=1 to viewers=8
# is the translate-once/deliver-N contract.
bench-smoke:
	$(GO) test ./internal/wire/ -run 'ZeroAlloc|TestPayloadSizeMatchesAppend|TestBatch' -count=1
	$(GO) test ./internal/wire/ -run '^$$' -bench . -benchtime=1x -count=1
	$(GO) test ./internal/core/ -run '^$$' -bench BenchmarkTranslateFanout -benchtime=100x -count=1
	$(GO) test ./internal/core/ -run 'TestCacheHotPathZeroAlloc' -count=1
	$(GO) test ./internal/fb/ -run 'TestDigestHotPathZeroAlloc' -count=1
	$(GO) test ./internal/fb/ -run '^$$' -bench BenchmarkTileDigest -benchtime=100x -count=1

# End-to-end latency smoke: a short live sweep (2 workloads x loopback +
# shaped WAN x 2 pinned rungs) through the wire-v5 mark loop. The run
# self-checks the report — it fails if any pipeline stage reports zero
# samples or any cell never got an acked mark. The JSON lands in a temp
# file so the committed BENCH_pr7.json (full-duration run) stays put.
bench-e2e-smoke:
	$(GO) run ./cmd/thinc-bench -e2e -e2e-duration 500ms -e2e-out /tmp/bench_e2e_smoke.json

# Payload-cache smoke: a short wire-v6 bytes-on-wire sweep (cached vs
# uncached over loopback + shaped WAN). The run self-checks the report
# — it fails unless every link clears the 5x steady-state reduction
# with a hot, miss-free cache and zero cache traffic on the uncached
# row. The committed BENCH_pr8.json comes from the full-round run
# (thinc-bench -cache with defaults); the smoke writes to a temp file.
bench-cache-smoke:
	$(GO) run ./cmd/thinc-bench -cache -cache-rounds 10 -cache-out /tmp/bench_cache_smoke.json

# Warm-reattach smoke: a short wire-v7 sweep (warm vs cold resumes over
# loopback + shaped WAN). The run self-checks the report — it fails
# unless a warm resume re-ships less than 5% of the cold resync's bytes
# on every link, with every warm cycle actually resuming warm. The
# committed BENCH_pr9.json comes from the full-cycle run (thinc-bench
# -reattach with defaults); the smoke writes to a temp file.
bench-reattach-smoke:
	$(GO) run ./cmd/thinc-bench -reattach -reattach-cycles 6 -reattach-out /tmp/bench_reattach_smoke.json

# Multi-session load smoke: the sharded delivery core hosting 1000
# fully event-driven sessions under the race detector, plus the smaller
# harness tests (-short keeps the unguarded smoke at 60 sessions). The
# run writes and validates the same self-checking report as the
# committed 10k benchmark (BENCH_pr10.json, from `go run ./cmd/thinc-load`):
# zero dead sessions, O(shards) goroutines, bounded heap per idle
# session, live heartbeat and damage-to-glass mark loops.
bench-load-smoke:
	THINC_LOAD_SMOKE=1 $(GO) test ./internal/loadsim/ -race -short -count=1 -timeout 15m

# Fuzz smoke: ~30s of coverage-guided fuzzing per wire decoder target,
# on top of the committed seed corpus (which always runs as part of
# `make test`). The trailing-extension decode pattern makes truncation
# the protocol's load-bearing edge case — a truncated v7 hello must
# decode as a v6/v5/... hello, never as a warm-cache claim — so the
# decoders get continuous adversarial input, not just the frozen seeds.
fuzz-smoke:
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzReadMessage -fuzztime 30s
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzVideoFrame -fuzztime 30s
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzAudioData -fuzztime 30s
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzCacheStore -fuzztime 30s
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzAuditReply -fuzztime 30s

# Regenerate the golden wire vectors under internal/wire/testdata/
# after a deliberate protocol change: the frozen-vector tests rewrite
# their hex files when run with -update, then the full golden suite
# re-runs to prove the regenerated vectors decode and round-trip.
# Review the diff — a vector that changed for a type you did not touch
# means an accidental wire break.
golden-regen:
	$(GO) test ./internal/wire/ -run Golden -update -count=1
	$(GO) test ./internal/wire/ -run Golden -count=1
