GO ?= go

.PHONY: all build vet test race check bench-snapshot

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet race

# Quick benchmark run that dumps THINC's per-command-type byte counts
# and core telemetry series to BENCH_pr2.json.
bench-snapshot:
	$(GO) run ./cmd/thinc-bench -quick -fig 2 -telemetry-out BENCH_pr2.json
