GO ?= go

.PHONY: all build vet test race check bench-snapshot bench-smoke

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet race

# Quick benchmark run that dumps THINC's per-command-type byte counts,
# core telemetry series, and encode pool counters to BENCH_pr3.json.
bench-snapshot:
	$(GO) run ./cmd/thinc-bench -quick -fig 2 -telemetry-out BENCH_pr3.json

# Encode fast-path smoke: the zero-allocation assertions plus one
# iteration of every wire benchmark, cheap enough for CI. The *ZeroAlloc
# tests fail if the flush path regresses to allocating.
bench-smoke:
	$(GO) test ./internal/wire/ -run 'ZeroAlloc|TestPayloadSizeMatchesAppend|TestBatch' -count=1
	$(GO) test ./internal/wire/ -run '^$$' -bench . -benchtime=1x -count=1
