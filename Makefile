GO ?= go

.PHONY: all build vet test race check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet race
