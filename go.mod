module thinc

go 1.22
