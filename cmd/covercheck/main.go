// Command covercheck enforces per-package statement-coverage floors:
// it parses a `go test -coverprofile` file, computes each package's
// covered-statement percentage, and fails if any package listed in the
// floors file dropped below its committed floor. Packages absent from
// the floors file are reported but not gated — new packages opt in by
// adding a line.
//
// Usage:
//
//	go test ./... -coverprofile=coverage.out
//	go run ./cmd/covercheck -profile coverage.out -floors coverage_floors.txt
//
// The floors file holds one `import/path minimum-percent` pair per
// line; '#' starts a comment. Raise a floor when a package's coverage
// durably improves — it must never be lowered to make a red build
// green without a recorded decision.
//
// Exit codes: 1 means a gated package dropped below its floor; 2 means
// the configuration itself is broken — an unreadable file, a malformed
// line, or a floor naming a package that no longer appears in the
// profile. The last case matters: a stale floor gates nothing, so a
// rename or deletion would silently retire the gate if it only warned.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// pkgCover accumulates statement counts for one package.
type pkgCover struct {
	stmts   int
	covered int
}

func (p pkgCover) percent() float64 {
	if p.stmts == 0 {
		return 100
	}
	return 100 * float64(p.covered) / float64(p.stmts)
}

func main() {
	profile := flag.String("profile", "coverage.out", "coverprofile produced by go test")
	floorsPath := flag.String("floors", "coverage_floors.txt", "per-package floor file")
	flag.Parse()

	cover, err := readProfile(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covercheck: %v\n", err)
		os.Exit(2)
	}
	floors, err := readFloors(*floorsPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covercheck: %v\n", err)
		os.Exit(2)
	}

	v := evaluate(cover, floors)
	for _, line := range v.lines {
		fmt.Println(line)
	}
	if len(v.stale) > 0 {
		fmt.Fprintf(os.Stderr, "covercheck: floors file names package(s) absent from the profile: %s\n",
			strings.Join(v.stale, ", "))
		fmt.Fprintln(os.Stderr, "covercheck: a stale floor gates nothing — fix the path or delete the line")
		os.Exit(2)
	}
	if len(v.below) > 0 {
		fmt.Fprintf(os.Stderr, "covercheck: %d package(s) below their coverage floor\n", len(v.below))
		os.Exit(1)
	}
}

// verdict is the outcome of judging one profile against the floors,
// separated from printing and exiting so it is testable.
type verdict struct {
	lines []string // per-package report, sorted by import path
	below []string // gated packages under their floor
	stale []string // floor entries naming packages absent from the profile
}

// evaluate computes each package's coverage, compares gated packages
// against their floors, and flags floors whose package is missing from
// the profile entirely — a configuration error, not a coverage one: a
// renamed or deleted package would otherwise retire its gate silently.
func evaluate(cover map[string]pkgCover, floors map[string]float64) verdict {
	var v verdict
	pkgs := make([]string, 0, len(cover))
	for pkg := range cover {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		pct := cover[pkg].percent()
		floor, gated := floors[pkg]
		switch {
		case !gated:
			v.lines = append(v.lines, fmt.Sprintf("  %-32s %6.1f%%  (no floor)", pkg, pct))
		case pct < floor:
			v.lines = append(v.lines, fmt.Sprintf("FAIL %-32s %6.1f%%  floor %.1f%%", pkg, pct, floor))
			v.below = append(v.below, pkg)
		default:
			v.lines = append(v.lines, fmt.Sprintf("  ok %-32s %6.1f%%  floor %.1f%%", pkg, pct, floor))
		}
	}
	gated := make([]string, 0, len(floors))
	for pkg := range floors {
		gated = append(gated, pkg)
	}
	sort.Strings(gated)
	for _, pkg := range gated {
		if _, ok := cover[pkg]; !ok {
			v.lines = append(v.lines, fmt.Sprintf("STALE %-31s not in profile (floor %.1f%%)", pkg, floors[pkg]))
			v.stale = append(v.stale, pkg)
		}
	}
	return v
}

// readProfile parses the coverprofile: after the mode line, each line
// is `file.go:L.C,L.C numStmts hitCount`. The package is the file's
// directory within the module.
func readProfile(name string) (map[string]pkgCover, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]pkgCover)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s: malformed line %q", name, line)
		}
		file, _, ok := strings.Cut(fields[0], ":")
		if !ok {
			return nil, fmt.Errorf("%s: malformed location %q", name, fields[0])
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s: statement count %q: %v", name, fields[1], err)
		}
		hits, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("%s: hit count %q: %v", name, fields[2], err)
		}
		pkg := path.Dir(file)
		pc := out[pkg]
		pc.stmts += stmts
		if hits > 0 {
			pc.covered += stmts
		}
		out[pkg] = pc
	}
	return out, sc.Err()
}

// readFloors parses `import/path percent` lines; '#' comments.
func readFloors(name string) (map[string]float64, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want `package percent`, got %q", name, lineNo, line)
		}
		pct, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || pct < 0 || pct > 100 {
			return nil, fmt.Errorf("%s:%d: bad percent %q", name, lineNo, fields[1])
		}
		out[fields[0]] = pct
	}
	return out, sc.Err()
}
