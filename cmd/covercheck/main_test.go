package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReadProfileAggregatesByPackage(t *testing.T) {
	p := writeTemp(t, "coverage.out", strings.Join([]string{
		"mode: atomic",
		"thinc/internal/a/x.go:1.1,2.2 4 1",
		"thinc/internal/a/x.go:3.1,4.2 6 0",
		"thinc/internal/a/y.go:1.1,2.2 10 7",
		"thinc/internal/b/z.go:1.1,2.2 5 0",
		"",
	}, "\n"))
	cover, err := readProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	a := cover["thinc/internal/a"]
	if a.stmts != 20 || a.covered != 14 {
		t.Fatalf("pkg a: %+v, want 14/20 covered", a)
	}
	if pct := a.percent(); pct != 70 {
		t.Fatalf("pkg a percent = %v, want 70", pct)
	}
	if b := cover["thinc/internal/b"]; b.percent() != 0 {
		t.Fatalf("pkg b percent = %v, want 0", b.percent())
	}
}

func TestReadProfileRejectsMalformedLines(t *testing.T) {
	for _, bad := range []string{
		"mode: atomic\nnot a profile line\n",
		"mode: atomic\nnocolon 3 1\n",
		"mode: atomic\na/x.go:1.1,2.2 NaN 1\n",
		"mode: atomic\na/x.go:1.1,2.2 3 NaN\n",
	} {
		p := writeTemp(t, "coverage.out", bad)
		if _, err := readProfile(p); err == nil {
			t.Errorf("profile %q accepted, want error", bad)
		}
	}
}

func TestReadFloorsParsesAndValidates(t *testing.T) {
	p := writeTemp(t, "floors.txt", strings.Join([]string{
		"# comment line",
		"thinc/internal/a 75.5   # trailing comment",
		"",
		"thinc/internal/b 0",
	}, "\n"))
	floors, err := readFloors(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(floors) != 2 || floors["thinc/internal/a"] != 75.5 || floors["thinc/internal/b"] != 0 {
		t.Fatalf("floors = %v", floors)
	}
	for _, bad := range []string{"pkg\n", "pkg 101\n", "pkg -1\n", "pkg x\n", "a b c\n"} {
		p := writeTemp(t, "floors.txt", bad)
		if _, err := readFloors(p); err == nil {
			t.Errorf("floors %q accepted, want error", bad)
		}
	}
}

func TestEvaluateSeparatesBelowFromStale(t *testing.T) {
	cover := map[string]pkgCover{
		"pkg/ok":      {stmts: 10, covered: 9}, // 90%
		"pkg/low":     {stmts: 10, covered: 5}, // 50%
		"pkg/ungated": {stmts: 10, covered: 1},
	}
	floors := map[string]float64{
		"pkg/ok":      85,
		"pkg/low":     80,
		"pkg/renamed": 70, // no longer in the profile: config error
	}
	v := evaluate(cover, floors)
	if len(v.below) != 1 || v.below[0] != "pkg/low" {
		t.Fatalf("below = %v, want [pkg/low]", v.below)
	}
	if len(v.stale) != 1 || v.stale[0] != "pkg/renamed" {
		t.Fatalf("stale = %v, want [pkg/renamed]", v.stale)
	}
	// One report line per covered package plus one per stale floor.
	if len(v.lines) != 4 {
		t.Fatalf("%d report lines, want 4:\n%s", len(v.lines), strings.Join(v.lines, "\n"))
	}
	joined := strings.Join(v.lines, "\n")
	for _, want := range []string{"  ok pkg/ok", "FAIL pkg/low", "(no floor)", "STALE pkg/renamed"} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q:\n%s", want, joined)
		}
	}
}

// TestEvaluateCleanRun: a healthy profile produces no failures of
// either kind, and a package with zero statements counts as fully
// covered rather than dividing by zero.
func TestEvaluateCleanRun(t *testing.T) {
	cover := map[string]pkgCover{
		"pkg/a":     {stmts: 4, covered: 4},
		"pkg/empty": {},
	}
	v := evaluate(cover, map[string]float64{"pkg/a": 100, "pkg/empty": 100})
	if len(v.below) != 0 || len(v.stale) != 0 {
		t.Fatalf("clean run flagged below=%v stale=%v", v.below, v.stale)
	}
}
