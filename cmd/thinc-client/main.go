// Command thinc-client is the headless instrumented THINC client the
// paper deployed to remote sites (§8.1): it authenticates, processes
// the full display and audio stream without output hardware, and
// reports per-command-type traffic statistics.
//
// Usage:
//
//	thinc-client -addr localhost:4900 -user demo -pass demo -duration 5s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"thinc/internal/client"
	"thinc/internal/logx"
	"thinc/internal/wire"
)

var lg = logx.Component("thinc-client")

func main() {
	addr := flag.String("addr", "localhost:4900", "server address")
	user := flag.String("user", "demo", "user name")
	pass := flag.String("pass", "demo", "password (or shared-session password)")
	vw := flag.Int("view-width", 0, "viewport width (0 = session size)")
	vh := flag.Int("view-height", 0, "viewport height (0 = session size)")
	duration := flag.Duration("duration", 10*time.Second, "how long to run")
	click := flag.Bool("click", false, "send a test mouse click after connecting")
	reconnect := flag.Bool("reconnect", false, "auto-reconnect with backoff and resume the session by ticket")
	viewer := flag.Bool("viewer", false, "attach read-only to the session broadcast (input is discarded)")
	noAudit := flag.Bool("no-audit", false, "ignore integrity-audit probes (emulates a pre-v4 peer)")
	noE2E := flag.Bool("no-e2e", false, "ignore end-to-end TimeMarks (emulates a pre-v5 peer)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()
	if err := logx.Setup(*logFormat, nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	role := wire.RoleOwner
	if *viewer {
		role = wire.RoleViewer
	}
	conn, err := client.DialRole(*addr, *user, *pass, *vw, *vh, role)
	if err != nil {
		fmt.Fprintf(os.Stderr, "connect: %v\n", err)
		os.Exit(1)
	}
	defer conn.Close()
	if *noAudit {
		conn.SetAuditDisabled(true)
	}
	if *noE2E {
		conn.SetE2EDisabled(true)
	}
	lg.Info("connected", "user", *user,
		"session_w", conn.ServerW, "session_h", conn.ServerH,
		"view_w", conn.Snapshot().W(), "view_h", conn.Snapshot().H())

	done := make(chan error, 1)
	if *reconnect {
		// Detect a dead server promptly (its heartbeats arrive well
		// within this window) and redial instead of exiting.
		conn.ReadTimeout = 30 * time.Second
		go func() { done <- conn.RunAuto(client.ReconnectPolicy{}) }()
	} else {
		go func() { done <- conn.Run() }()
	}

	if *click {
		_ = conn.SendInput(&wire.Input{
			Kind: wire.InputMouseButton,
			X:    conn.ServerW / 2, Y: conn.ServerH / 2,
			Code: 1, Press: true,
			TimeUS: uint64(time.Now().UnixMicro()),
		})
	}

	select {
	case err := <-done:
		lg.Warn("stream ended", "user", *user, "err", fmt.Sprint(err))
	case <-time.After(*duration):
	}

	st := conn.Stats()
	fmt.Printf("state: %v, reconnects: %d, pongs answered: %d\n",
		st.State, st.Reconnects, st.PongsSent)
	fmt.Printf("screen checksum: %08x\n", conn.Snapshot().Checksum())
	fmt.Printf("%-12s %10s %12s\n", "command", "count", "bytes")
	var types []wire.Type
	for ty := range st.Messages {
		types = append(types, ty)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	var total int64
	for _, ty := range types {
		fmt.Printf("%-12v %10d %12d\n", ty, st.Messages[ty], st.Bytes[ty])
		total += st.Bytes[ty]
	}
	fmt.Printf("%-12s %10s %12d\n", "total", "", total)
	if st.FramesShown > 0 {
		fmt.Printf("video frames shown: %d\n", st.FramesShown)
	}
	if st.AudioChunks > 0 {
		fmt.Printf("audio chunks: %d\n", st.AudioChunks)
	}
	if st.AuditProbes > 0 {
		fmt.Printf("integrity audit: %d probes, %d replies\n",
			st.AuditProbes, st.AuditReplies)
	}
	if st.MarksSeen > 0 {
		fmt.Printf("e2e tracing: %d marks, %d acks\n",
			st.MarksSeen, st.MarkAcksSent)
	}
	if st.CacheKB > 0 {
		fmt.Printf("payload cache: %d KB granted, %d stores, %d paints, %d held (%d bytes), %d misses\n",
			st.CacheKB, st.CacheStored, st.CachePainted, st.CacheEntries, st.CacheBytes, st.CacheMissReports)
	}
	if st.ReattachAttempts > 0 {
		fmt.Printf("reattach: %d attempts, %d warm resumes, %d cold fallbacks, %d busy refusals, %d bytes saved by cache replays\n",
			st.ReattachAttempts, st.WarmResumes, st.ColdFallbacks, st.BusyRejections, st.CacheSavedBytes)
	}
}
