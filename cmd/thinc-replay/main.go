// Command thinc-replay plays back a session recording produced by the
// server's -record flag (or Host.Record): it executes the timestamped
// command stream into a headless client — optionally at recorded speed —
// and reports what the session contained. Recording and replaying a
// session is the mirroring building block §1 of the paper highlights
// (technical support, collaboration, auditing).
//
// Usage:
//
//	thinc-server -record session.thinc &
//	...
//	thinc-replay -in session.thinc -width 1024 -height 768
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"time"

	"thinc/internal/client"
	"thinc/internal/server"
	"thinc/internal/wire"
)

func main() {
	in := flag.String("in", "", "recording file (required)")
	w := flag.Int("width", 1024, "session width")
	h := flag.Int("height", 768, "session height")
	realtime := flag.Bool("realtime", false, "replay at recorded speed instead of instantly")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer f.Close()

	viewer := client.New(*w, *h)
	var count int
	var last uint64
	start := time.Now()
	for {
		rec, err := server.ReadRecord(f)
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatalf("record %d: %v", count+1, err)
		}
		if *realtime {
			target := time.Duration(rec.AtUS) * time.Microsecond
			if elapsed := time.Since(start); elapsed < target {
				time.Sleep(target - elapsed)
			}
		}
		if err := viewer.Apply(rec.Msg); err != nil {
			log.Fatalf("apply record %d (%v): %v", count+1, rec.Msg.Type(), err)
		}
		count++
		last = rec.AtUS
	}

	fmt.Printf("replayed %d commands spanning %.2fs\n", count, float64(last)/1e6)
	fmt.Printf("final screen checksum: %08x\n", viewer.FB().Checksum())
	st := viewer.Stats()
	var types []wire.Type
	for ty := range st.Messages {
		types = append(types, ty)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, ty := range types {
		fmt.Printf("  %-12v x%-6d %10d bytes\n", ty, st.Messages[ty], st.Bytes[ty])
	}
}
