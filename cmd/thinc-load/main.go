// Command thinc-load is the multi-session scale benchmark for the
// sharded delivery core: it attaches N fully event-driven THINC
// sessions (default 10000) to one server.Fleet over in-memory
// transports, drives a rotating active subset with desktop-style
// damage plus optional degradation and reattach churn, and writes a
// self-checking JSON report (BENCH_pr10.json by convention).
//
// The report proves the architecture's claims rather than just
// printing numbers: goroutine count stays O(shards) instead of
// O(sessions), idle sessions cost bounded heap, shard queue wait
// stays fair, and p99 damage-to-glass latency (the wire-v5 TimeMark
// pipeline, same instrument as BENCH_pr7.json) stays inside the
// envelope. A non-empty self-check list exits nonzero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"thinc/internal/loadsim"
)

func main() {
	sessions := flag.Int("sessions", 10000, "concurrent sessions to attach")
	active := flag.Int("active", 64, "sessions receiving damage each tick")
	duration := flag.Duration("duration", 10*time.Second, "measured drive phase")
	tick := flag.Duration("tick", 25*time.Millisecond, "damage cadence")
	shards := flag.Int("shards", 0, "worker shards (0 = default)")
	reattachEvery := flag.Int("reattach-every", 20,
		"ticket-reattach one session every N ticks (0 disables)")
	degradeEvery := flag.Int("degrade-every", 16,
		"cycle a degradation rung every N ticks (0 disables)")
	envelopeUS := flag.Int64("e2e-envelope-us", 0,
		"p99 damage-to-glass budget in us (0 = default)")
	out := flag.String("out", "BENCH_pr10.json", "report path (- for stdout)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	progress := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		progress = nil
	}

	rep, err := loadsim.Run(loadsim.Options{
		Sessions:      *sessions,
		Active:        *active,
		Duration:      *duration,
		Tick:          *tick,
		Shards:        *shards,
		ReattachEvery: *reattachEvery,
		DegradeEvery:  *degradeEvery,
		E2EEnvelopeUS: *envelopeUS,
		Progress:      progress,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "thinc-load:", err)
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "thinc-load:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "thinc-load:", err)
			os.Exit(1)
		}
	}

	if bad := rep.Check(); len(bad) > 0 {
		fmt.Fprintln(os.Stderr, "SELF-CHECK FAILED:")
		for _, b := range bad {
			fmt.Fprintln(os.Stderr, "  -", b)
		}
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr,
		"OK: %d sessions, %.0f sessions/core, e2e p99 %dus, %d goroutines (budget %d)\n",
		rep.Sessions, rep.SessionsPerCore, rep.E2E.P99US,
		rep.Goroutines.Idle, rep.Goroutines.Budget)
}
