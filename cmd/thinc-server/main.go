// Command thinc-server runs a THINC display session over TCP: a window
// system with the THINC virtual display driver, an authenticated
// RC4-encrypted transport, and a small interactive demo application so
// connected clients have something to watch and click (§7).
//
// Usage:
//
//	thinc-server -addr :4900 -user demo -pass demo
//
// Connect with thinc-client (add -click to press the demo button).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"thinc/internal/auth"
	"thinc/internal/compress"
	"thinc/internal/core"
	"thinc/internal/geom"
	"thinc/internal/logx"
	"thinc/internal/pixel"
	"thinc/internal/server"
	"thinc/internal/telemetry"
	"thinc/internal/ui"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

var lg = logx.Component("thinc-server")

func main() {
	addr := flag.String("addr", ":4900", "listen address")
	user := flag.String("user", "demo", "session owner")
	pass := flag.String("pass", "demo", "owner password")
	sessionPass := flag.String("session-pass", "", "optional shared-session password for peers")
	w := flag.Int("width", 1024, "session framebuffer width")
	h := flag.Int("height", 768, "session framebuffer height")
	demo := flag.Bool("demo", true, "run the built-in demo application")
	record := flag.String("record", "", "record the session's command stream to a file (see thinc-replay)")
	hbInterval := flag.Duration("heartbeat", time.Second, "heartbeat ping interval")
	hbTimeout := flag.Duration("heartbeat-timeout", 0, "silence before a peer is reaped (0 = 3x heartbeat)")
	detachGrace := flag.Duration("detach-grace", 30*time.Second, "how long a dropped session may reattach with its ticket (negative disables)")
	maxBacklog := flag.Int("max-backlog", 32<<20, "per-client command backlog bound in bytes before a forced resync (negative disables)")
	maxViewers := flag.Int("max-viewers", 0, "cap on simultaneous viewer-role connections (0 = default 16, negative = unlimited)")
	cacheKB := flag.Int("cache-kb", 0, "per-client payload-cache grant cap in KB (wire v6; 0 disables)")
	auditInterval := flag.Duration("audit-interval", 2*time.Second, "integrity-audit probe cadence per client")
	auditSample := flag.Int("audit-sample", 0, "tiles digested per audit probe (0 = default 16)")
	noAudit := flag.Bool("no-audit", false, "disable the wire-v4 integrity audit entirely")
	noE2E := flag.Bool("no-e2e", false, "disable wire-v5 end-to-end mark tracing")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/trace and pprof on this address (e.g. :6060; empty disables)")
	statsInterval := flag.Duration("stats-interval", 0, "print a one-line telemetry summary at this interval (0 disables)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()
	if err := logx.Setup(*logFormat, nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	accounts := auth.NewAccounts()
	accounts.Add(*user, *pass)
	gate := auth.NewAuthenticator(*user, accounts)
	if *sessionPass != "" {
		gate.SetSessionPassword(*sessionPass)
	}

	app := &demoApp{}
	host := server.NewHost(*w, *h, gate, server.Options{
		Core:              core.Options{RawCodec: compress.CodecPNG},
		OnInput:           app.input,
		HeartbeatInterval: *hbInterval,
		HeartbeatTimeout:  *hbTimeout,
		DetachGrace:       *detachGrace,
		MaxBacklogBytes:   *maxBacklog,
		MaxViewers:        *maxViewers,
		CacheKB:           *cacheKB,
		AuditInterval:     *auditInterval,
		AuditSampleTiles:  *auditSample,
		DisableAudit:      *noAudit,
		DisableE2E:        *noE2E,
	})
	app.host = host

	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			lg.Error("record", "err", err.Error())
			os.Exit(1)
		}
		rec := host.Record(f)
		defer func() {
			if err := rec.Close(); err != nil {
				lg.Error("recorder", "err", err.Error())
			}
			f.Close()
		}()
		lg.Info("recording session", "path", *record)
	}

	if *debugAddr != "" {
		dbg, err := telemetry.Serve(*debugAddr, host.Telemetry(), host.Tracer())
		if err != nil {
			lg.Error("debug listener", "err", err.Error())
			os.Exit(1)
		}
		defer dbg.Close()
		lg.Info("debug listener up",
			"url", "http://"+dbg.Addr(),
			"endpoints", "/metrics /debug/trace /debug/spans /debug/pprof")
	}
	if *statsInterval > 0 {
		go statsLoop(host, *statsInterval)
	}

	if *demo {
		go app.run(*w, *h)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "listen: %v\n", err)
		os.Exit(1)
	}
	lg.Info("session listening", "addr", l.Addr().String(),
		"w", *w, "h", *h, "user", *user)
	if err := host.Serve(l); err != nil {
		lg.Error("serve", "err", err.Error())
		os.Exit(1)
	}
}

// statsLoop prints a one-line telemetry summary every interval: client
// count, command/byte deltas, scheduler pressure, and heartbeat RTT.
func statsLoop(host *server.Host, interval time.Duration) {
	reg := host.Telemetry()
	var lastMsgs, lastBytes int64
	for range time.Tick(interval) {
		msgs := reg.Total("thinc_wire_messages_total")
		bytes := reg.Total("thinc_wire_bytes_total")
		queued := reg.Total("thinc_sched_commands_queued_total")
		merged := reg.Value("thinc_sched_commands_merged_total")
		evicted := reg.Value("thinc_sched_commands_evicted_total")
		rttN, rttSum := reg.HistogramStats("thinc_heartbeat_rtt_us")
		var rttAvg int64
		if rttN > 0 {
			rttAvg = rttSum / rttN
		}
		lg.Info("stats",
			"clients", host.NumClients(),
			"msgs", msgs, "msgs_delta", msgs-lastMsgs,
			"bytes", bytes, "bytes_delta", bytes-lastBytes,
			"queued", queued, "merged", merged, "evicted", evicted,
			"rtt_avg_us", rttAvg)
		lastMsgs, lastBytes = msgs, bytes
	}
}

// demoApp is an interactive dashboard built on the ui toolkit: a
// clickable counter button, an animated gauge, a bouncing box, and a
// double-buffered ticker line — fills, text, copies, raw updates, and
// real-time button feedback, continuously.
type demoApp struct {
	host *server.Host

	mu     sync.Mutex
	panel  *ui.Panel
	button *ui.Button
	count  *ui.Label
	gauge  *ui.Gauge
	clicks int
}

func (a *demoApp) run(w, h int) {
	a.host.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, w, h))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(24, 26, 32)}, win.Bounds())
		d.DrawText(win, &xserver.GC{Fg: pixel.RGB(240, 240, 240)}, 16, 16,
			"THINC demo session")

		a.mu.Lock()
		a.panel = &ui.Panel{Win: win, Area: geom.XYWH(16, 180, 360, 140),
			Background: pixel.RGB(36, 40, 48)}
		a.button = &ui.Button{Rect: geom.XYWH(16, 16, 120, 28), Text: "press me",
			OnClick: func() { a.clicks++ }}
		a.count = &ui.Label{At: geom.Point{X: 160, Y: 24}, Text: "clicks: 0",
			Color: pixel.RGB(220, 220, 120)}
		a.gauge = &ui.Gauge{Rect: geom.XYWH(16, 70, 320, 14)}
		a.panel.Add(a.button)
		a.panel.Add(a.count)
		a.panel.Add(a.gauge)
		a.panel.Render(d)
		a.mu.Unlock()

		cursor := make([]pixel.ARGB, 8*8)
		for i := range cursor {
			cursor[i] = pixel.PackARGB(230, 240, 240, 255)
		}
		d.SetCursor(cursor, 8, 8, geom.Point{})
	})

	x, dx := 40, 4
	tick := 0
	for range time.Tick(100 * time.Millisecond) {
		tick++
		a.host.Do(func(d *xserver.Display) {
			win := d.CreateWindow(geom.XYWH(0, 0, w, h))
			// Bouncing box.
			d.FillRect(win, &xserver.GC{Fg: pixel.RGB(24, 26, 32)}, geom.XYWH(0, 60, w, 60))
			d.FillRect(win, &xserver.GC{Fg: pixel.RGB(200, 80, 40)}, geom.XYWH(x, 70, 40, 40))
			// Ticker line via offscreen double buffering.
			pm := d.CreatePixmap(w, 20)
			d.FillRect(pm, &xserver.GC{Fg: pixel.RGB(40, 44, 52)}, pm.Bounds())
			d.DrawText(pm, &xserver.GC{Fg: pixel.RGB(120, 220, 120)}, 8, 4,
				fmt.Sprintf("tick %d", tick))
			d.CopyArea(win, pm, pm.Bounds(), geom.Point{X: 0, Y: 140})
			d.FreePixmap(pm)

			// Animated gauge + click counter.
			a.mu.Lock()
			a.gauge.Value = float64(tick%50) / 50
			a.count.Text = fmt.Sprintf("clicks: %d", a.clicks)
			a.panel.Render(d)
			a.mu.Unlock()
		})
		x += dx
		if x < 8 || x > w-56 {
			dx = -dx
		}
	}
}

// input dispatches client clicks to the panel (button feedback is drawn
// immediately — the real-time path).
func (a *demoApp) input(ev *wire.Input) {
	if ev.Kind != wire.InputMouseButton {
		return
	}
	a.mu.Lock()
	panel := a.panel
	a.mu.Unlock()
	if panel == nil {
		return
	}
	a.host.Do(func(d *xserver.Display) {
		a.mu.Lock()
		defer a.mu.Unlock()
		if ev.Press {
			if panel.Click(d, geom.Point{X: ev.X, Y: ev.Y}) {
				lg.Info("button pressed", "clicks", a.clicks)
			}
		} else {
			panel.Release(d)
		}
	})
}
