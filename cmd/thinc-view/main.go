// Command thinc-view is a terminal THINC viewer: it connects like any
// client and renders the session into the terminal using 24-bit ANSI
// half-block cells, refreshing live — a usable (if chunky) display for
// machines with no graphics output, and a quick way to *see* a session,
// cursor included.
//
// Usage:
//
//	thinc-view -addr localhost:4900 -cols 100 -rows 36
//	thinc-view -addr localhost:4900 -once          # one frame, then exit
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"thinc/internal/client"
	"thinc/internal/fb"
	"thinc/internal/logx"
	"thinc/internal/resample"
	"thinc/internal/wire"
)

var lg = logx.Component("thinc-view")

func main() {
	addr := flag.String("addr", "localhost:4900", "server address")
	user := flag.String("user", "demo", "user name")
	pass := flag.String("pass", "demo", "password")
	cols := flag.Int("cols", 100, "terminal columns")
	rows := flag.Int("rows", 36, "terminal rows (each shows two pixel rows)")
	fps := flag.Int("fps", 10, "refresh rate")
	once := flag.Bool("once", false, "render a single frame and exit")
	duration := flag.Duration("duration", 0, "exit after this long (0 = run until the stream ends)")
	viewer := flag.Bool("viewer", false, "attach read-only to the session broadcast")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()
	if err := logx.Setup(*logFormat, nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	role := wire.RoleOwner
	if *viewer {
		role = wire.RoleViewer
	}
	conn, err := client.DialRole(*addr, *user, *pass, 0, 0, role)
	if err != nil {
		fmt.Fprintf(os.Stderr, "connect: %v\n", err)
		os.Exit(1)
	}
	defer conn.Close()

	done := make(chan error, 1)
	go func() { done <- conn.Run() }()

	if *once {
		time.Sleep(300 * time.Millisecond) // let the refresh land
		os.Stdout.WriteString(render(conn.View(), *cols, *rows))
		return
	}

	fmt.Print("\x1b[2J") // clear
	t := time.NewTicker(time.Second / time.Duration(max(1, *fps)))
	defer t.Stop()
	var stop <-chan time.Time
	if *duration > 0 {
		stop = time.After(*duration)
	}
	for {
		select {
		case err := <-done:
			fmt.Print("\x1b[0m\n")
			lg.Warn("stream ended", "user", *user, "err", fmt.Sprint(err))
			return
		case <-stop:
			fmt.Print("\x1b[0m\n")
			return
		case <-t.C:
			frame := render(conn.View(), *cols, *rows)
			fmt.Print("\x1b[H" + frame) // home + repaint
		}
	}
}

// render downsamples the framebuffer to cols x (2*rows) pixels and
// encodes it as ANSI half-blocks: each character cell carries two
// vertically stacked pixels (foreground = top, background = bottom).
func render(f *fb.Framebuffer, cols, rows int) string {
	pix := resample.Fant(f.Pix(), f.W(), f.W(), f.H(), cols, rows*2)
	var b strings.Builder
	b.Grow(cols * rows * 40)
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			top := pix[(2*y)*cols+x]
			bot := pix[(2*y+1)*cols+x]
			fmt.Fprintf(&b, "\x1b[38;2;%d;%d;%dm\x1b[48;2;%d;%d;%dm▀",
				top.R(), top.G(), top.B(), bot.R(), bot.G(), bot.B())
		}
		b.WriteString("\x1b[0m\n")
	}
	return b.String()
}
