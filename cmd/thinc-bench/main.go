// Command thinc-bench regenerates the tables and figures of the paper's
// evaluation (§8) from the simulated testbed: web page latency and data
// (Figures 2-3), remote-site web performance (Figure 4), A/V quality
// and data (Figures 5-6), remote-site A/V (Figure 7), and the ablation
// studies of THINC's design choices.
//
// Usage:
//
//	thinc-bench                  # full paper-scale run (54 pages, 34.75s clip)
//	thinc-bench -quick           # shortened workloads for a fast look
//	thinc-bench -fig 5           # one figure only
//	thinc-bench -pages 9 -seconds 5
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"thinc/internal/auth"
	"thinc/internal/baseline"
	"thinc/internal/bench"
	"thinc/internal/client"
	"thinc/internal/core"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/server"
	"thinc/internal/xserver"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2|3|4|5|6|7|ablations|all")
	pages := flag.Int("pages", 0, "web pages per run (0 = full 54-page benchmark)")
	seconds := flag.Float64("seconds", 0, "A/V clip seconds (0 = full 34.75s clip)")
	quick := flag.Bool("quick", false, "shortcut for -pages 9 -seconds 5")
	telemetryOut := flag.String("telemetry-out", "", "write a THINC telemetry snapshot (per-command-type bytes + core series) to this JSON file")
	e2e := flag.Bool("e2e", false, "run the live end-to-end latency sweep instead of the figure benchmarks")
	e2eOut := flag.String("e2e-out", "BENCH_pr7.json", "where -e2e writes its percentile report")
	e2eDur := flag.Duration("e2e-duration", 2*time.Second, "damage time per (workload, link, rung) cell")
	cache := flag.Bool("cache", false, "run the wire-v6 payload cache bytes-on-wire sweep")
	cacheOut := flag.String("cache-out", "BENCH_pr8.json", "where -cache writes its report")
	cacheRounds := flag.Int("cache-rounds", 0, "steady rounds per cache cell (0 = default)")
	reattach := flag.Bool("reattach", false, "run the wire-v7 warm-vs-cold reattach resync sweep")
	reattachOut := flag.String("reattach-out", "BENCH_pr9.json", "where -reattach writes its report")
	reattachCycles := flag.Int("reattach-cycles", 0, "measured resumes per reattach cell (0 = default)")
	flag.Parse()

	if *e2e {
		if err := runE2EMode(*e2eOut, *e2eDur); err != nil {
			fmt.Fprintf(os.Stderr, "e2e: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *cache {
		if err := runCacheMode(*cacheOut, *cacheRounds); err != nil {
			fmt.Fprintf(os.Stderr, "cache: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *reattach {
		if err := runReattachMode(*reattachOut, *reattachCycles); err != nil {
			fmt.Fprintf(os.Stderr, "reattach: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *quick {
		if *pages == 0 {
			*pages = 9
		}
		if *seconds == 0 {
			*seconds = 5
		}
	}

	start := time.Now()
	s := bench.NewSuite(*pages, *seconds)
	var tables []*bench.Table
	switch *fig {
	case "2":
		tables = append(tables, s.Fig2())
	case "3":
		tables = append(tables, s.Fig3())
	case "4":
		tables = append(tables, s.Fig4())
	case "5":
		tables = append(tables, s.Fig5())
	case "6":
		tables = append(tables, s.Fig6())
	case "7":
		tables = append(tables, s.Fig7())
	case "ablations":
		tables = append(tables, s.Ablations())
	case "all":
		tables = s.AllTables()
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}
	if *telemetryOut != "" {
		if err := writeTelemetry(*telemetryOut, *pages, *seconds); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry snapshot written to %s\n", *telemetryOut)
	}
	fmt.Printf("completed in %v\n", time.Since(start).Round(time.Millisecond))
}

// runE2EMode sweeps the live end-to-end latency cells (workloads x
// links x rungs), writes the percentile report, and self-checks it —
// the CI smoke job fails on any cell with a silent stage.
func runE2EMode(path string, dur time.Duration) error {
	start := time.Now()
	report, err := bench.RunE2E(bench.E2EOptions{Duration: dur},
		func(msg string) { fmt.Println(msg) })
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := report.Check(); err != nil {
		return fmt.Errorf("report self-check: %w", err)
	}
	for _, r := range report.Runs {
		fmt.Printf("%-8s %-9s rung=%-12s acks=%-4d p50=%-7dus p95=%-7dus p99=%-7dus\n",
			r.Workload, r.Link, r.RungName, r.Acks, r.E2E.P50, r.E2E.P95, r.E2E.P99)
	}
	fmt.Printf("e2e report written to %s (%v)\n", path, time.Since(start).Round(time.Millisecond))
	return nil
}

// runCacheMode sweeps the wire-v6 payload cache cells (links x
// cached/uncached), writes the bytes-on-wire report, and self-checks
// it — the CI smoke job fails unless every link clears the 5x
// steady-state reduction with a hot, miss-free cache.
func runCacheMode(path string, steadyRounds int) error {
	start := time.Now()
	report, err := bench.RunCacheBench(bench.CacheOptions{SteadyRounds: steadyRounds},
		func(msg string) { fmt.Println(msg) })
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := report.Check(); err != nil {
		return fmt.Errorf("report self-check: %w", err)
	}
	for _, c := range report.Runs {
		fmt.Printf("%-9s %-8s steady=%-9dB round=%-8dB stores=%-4d paints=%-5d hit=%d/1000 p99=%dus\n",
			c.Link, c.Mode, c.SteadyBytes, c.BytesPerRound, c.CacheStores, c.CachePaints,
			c.HitRatioMilli, c.E2E.P99)
	}
	for link, ratio := range report.RatioMilli {
		fmt.Printf("%-9s steady bytes reduction: %d.%03dx\n", link, ratio/1000, ratio%1000)
	}
	fmt.Printf("cache report written to %s (%v)\n", path, time.Since(start).Round(time.Millisecond))
	return nil
}

// runReattachMode sweeps the wire-v7 reattach cells (links x
// warm/cold), writes the resync bytes + convergence latency report,
// and self-checks it — the CI smoke job fails unless a warm resume
// re-ships less than 5% of the cold resync's bytes on every link.
func runReattachMode(path string, cycles int) error {
	start := time.Now()
	report, err := bench.RunReattachBench(bench.ReattachOptions{Cycles: cycles},
		func(msg string) { fmt.Println(msg) })
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := report.Check(); err != nil {
		return fmt.Errorf("report self-check: %w", err)
	}
	for _, c := range report.Runs {
		fmt.Printf("%-9s %-5s resync=%-8dB/resume warm=%-3d cold=%-3d paints=%-5d p50=%-7dus p99=%-7dus\n",
			c.Link, c.Mode, c.BytesPerResync, c.WarmResumes, c.ColdResumes,
			c.CachePaints, c.Converge.P50, c.Converge.P99)
	}
	for link, milli := range report.WarmColdMilli {
		fmt.Printf("%-9s warm resync ships %d.%01d%% of cold bytes\n", link, milli/10, milli%10)
	}
	fmt.Printf("reattach report written to %s (%v)\n", path, time.Since(start).Round(time.Millisecond))
	return nil
}

// writeTelemetry runs THINC's web and A/V workloads over the LAN
// configuration and dumps per-command-type delivery counts plus the
// core translation/scheduler series to a JSON file.
func writeTelemetry(path string, pages int, seconds float64) error {
	sys := baseline.THINC()
	cfg := bench.LANDesktop()
	report := &bench.TelemetryReport{}
	web := bench.RunWeb(sys, cfg, pages)
	report.Runs = append(report.Runs, bench.TelemetryRun{
		System: web.System, Config: web.Config, Workload: "web", Snapshot: web.Telemetry,
	})
	av := bench.RunAV(sys, cfg, seconds)
	report.Runs = append(report.Runs, bench.TelemetryRun{
		System: av.System, Config: av.Config, Workload: "av", Snapshot: av.Telemetry,
	})
	if audit, err := auditTelemetryRun(); err == nil {
		report.Runs = append(report.Runs, audit)
	} else {
		fmt.Fprintf(os.Stderr, "audit telemetry run: %v\n", err)
	}
	report.EncodePools = bench.SnapshotEncodePools()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return report.Write(f)
}

// auditTelemetryRun exercises the wire-v4 integrity audit against a
// live loopback session — draw, silently corrupt two client tiles,
// wait for the self-healing repair — and snapshots the host registry,
// so the thinc_audit_* counter family lands in the benchmark JSON with
// real traffic behind it.
func auditTelemetryRun() (bench.TelemetryRun, error) {
	run := bench.TelemetryRun{System: "thinc", Config: "loopback", Workload: "audit"}
	accounts := auth.NewAccounts()
	accounts.Add("bench", "pw")
	host := server.NewHost(96, 64, auth.NewAuthenticator("bench", accounts), server.Options{
		Core:          core.Options{AuditTileSize: 16},
		FlushInterval: time.Millisecond,
		AuditInterval: 5 * time.Millisecond,
		AuditTimeout:  500 * time.Millisecond,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return run, err
	}
	defer l.Close()
	go host.Serve(l)
	conn, err := client.Dial(l.Addr().String(), "bench", "pw", 96, 64)
	if err != nil {
		return run, err
	}
	defer conn.Close()
	go conn.Run()

	host.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, 96, 64))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(30, 60, 90)}, geom.XYWH(0, 0, 96, 64))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(200, 50, 10)}, geom.XYWH(8, 8, 40, 30))
		d.DrawText(win, &xserver.GC{Fg: pixel.RGB(255, 255, 255)}, 10, 40, "audit")
	})
	want := host.ScreenChecksum()
	converge := func() error {
		deadline := time.Now().Add(10 * time.Second)
		for conn.Snapshot().Checksum() != want {
			if time.Now().After(deadline) {
				return fmt.Errorf("audit run did not converge")
			}
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	}
	if err := converge(); err != nil {
		return run, err
	}
	conn.WithFB(func(f *fb.Framebuffer) {
		g := fb.Grid(f.W(), f.H(), 16)
		for _, i := range []int{2, 20} {
			r := g.Rect(i)
			f.Set(r.X0, r.Y0, f.At(r.X0, r.Y0)^0x00000100)
		}
	})
	if err := converge(); err != nil {
		return run, err
	}
	run.Snapshot = &bench.TelemetrySnapshot{Series: host.Telemetry().Snapshot()}
	return run, nil
}
