package thinc

import (
	"testing"

	"thinc/internal/baseline"
	"thinc/internal/bench"
	"thinc/internal/compress"
)

// One benchmark per table/figure of the paper's evaluation (§8). Each
// runs the simulated experiment behind the corresponding figure on a
// shortened workload; cmd/thinc-bench regenerates the full-scale
// numbers and EXPERIMENTS.md records paper-vs-measured. Benchmark time
// here is simulation wall time, not the virtual latencies the figures
// report.

const (
	benchPages   = 6
	benchSeconds = 3
)

// BenchmarkFig2WebLatency drives the Figure 2 experiment: the web
// benchmark over LAN and WAN for every platform.
func BenchmarkFig2WebLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.NewSuite(benchPages, benchSeconds)
		_ = s.Fig2()
	}
}

// BenchmarkFig3WebData drives the Figure 3 experiment: per-page data
// transferred for every platform.
func BenchmarkFig3WebData(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.NewSuite(benchPages, benchSeconds)
		_ = s.Fig3()
	}
}

// BenchmarkFig4RemoteWeb drives the Figure 4 experiment: THINC web
// performance from the Table 2 remote sites.
func BenchmarkFig4RemoteWeb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.NewSuite(benchPages, benchSeconds)
		_ = s.Fig4()
	}
}

// BenchmarkFig5AVQuality drives the Figure 5 experiment: A/V playback
// quality for every platform.
func BenchmarkFig5AVQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.NewSuite(benchPages, benchSeconds)
		_ = s.Fig5()
	}
}

// BenchmarkFig6AVData drives the Figure 6 experiment: A/V data
// transferred for every platform.
func BenchmarkFig6AVData(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.NewSuite(benchPages, benchSeconds)
		_ = s.Fig6()
	}
}

// BenchmarkFig7RemoteAV drives the Figure 7 experiment: THINC A/V
// quality from the Table 2 remote sites.
func BenchmarkFig7RemoteAV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.NewSuite(benchPages, benchSeconds)
		_ = s.Fig7()
	}
}

// Ablation benchmarks: each isolates one design choice of DESIGN.md.

// BenchmarkAblationOffscreen compares web traffic with offscreen
// awareness on and off (§4.1), uncompressed to isolate the effect.
func BenchmarkAblationOffscreen(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		b.Helper()
		var bytes int64
		for i := 0; i < b.N; i++ {
			sys := baseline.THINCWith("v", CoreOptions{DisableOffscreen: disable})
			w := bench.RunWeb(sys, bench.LANDesktop(), benchPages)
			bytes = w.AvgBytes()
		}
		b.ReportMetric(float64(bytes), "bytes/page")
	}
	b.Run("tracked", func(b *testing.B) { run(b, false) })
	b.Run("ignored", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationScheduler compares SRSF+realtime against FIFO on the
// interactive-response microbenchmark (§5).
func BenchmarkAblationScheduler(b *testing.B) {
	run := func(b *testing.B, fifo bool) {
		b.Helper()
		var resp float64
		for i := 0; i < b.N; i++ {
			sys := baseline.THINCWith("v", CoreOptions{RawCodec: CodecPNG, FIFODelivery: fifo})
			resp = bench.RunInteractive(sys, bench.WANDesktop()).Millis()
		}
		b.ReportMetric(resp, "response-ms")
	}
	b.Run("srsf", func(b *testing.B) { run(b, false) })
	b.Run("fifo", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationPushPull compares server-push against client-pull
// delivery on WAN video (§5).
func BenchmarkAblationPushPull(b *testing.B) {
	run := func(b *testing.B, sys baseline.System) {
		b.Helper()
		var q float64
		for i := 0; i < b.N; i++ {
			q = bench.RunAV(sys, bench.WANDesktop(), benchSeconds).Quality
		}
		b.ReportMetric(q*100, "quality-%")
	}
	b.Run("push", func(b *testing.B) { run(b, baseline.THINC()) })
	b.Run("pull", func(b *testing.B) { run(b, baseline.WithPull("pull")) })
}

// BenchmarkAblationResize compares server-side against client-side
// resizing on the PDA configuration (§6).
func BenchmarkAblationResize(b *testing.B) {
	run := func(b *testing.B, sys baseline.System) {
		b.Helper()
		var bytes int64
		for i := 0; i < b.N; i++ {
			bytes = bench.RunWeb(sys, bench.PDA(), benchPages).AvgBytes()
		}
		b.ReportMetric(float64(bytes), "bytes/page")
	}
	clientResize := baseline.THINC()
	clientResize.SysName = "client-resize"
	clientResize.ResizeBy = baseline.ResizeClient
	b.Run("server", func(b *testing.B) { run(b, baseline.THINC()) })
	b.Run("client", func(b *testing.B) { run(b, clientResize) })
}

// BenchmarkAblationCompression compares PNG-compressed against
// uncompressed RAW payloads on the web workload (§7).
func BenchmarkAblationCompression(b *testing.B) {
	run := func(b *testing.B, codec compress.Codec) {
		b.Helper()
		var bytes int64
		for i := 0; i < b.N; i++ {
			sys := baseline.THINCWith("v", CoreOptions{RawCodec: codec})
			bytes = bench.RunWeb(sys, bench.LANDesktop(), benchPages).AvgBytes()
		}
		b.ReportMetric(float64(bytes), "bytes/page")
	}
	b.Run("png", func(b *testing.B) { run(b, CodecPNG) })
	b.Run("none", func(b *testing.B) { run(b, CodecNone) })
}

// BenchmarkMicroScrollDrag measures the interactive scroll/drag cost
// THINC's COPY command exists for (§3).
func BenchmarkMicroScrollDrag(b *testing.B) {
	for _, name := range []string{"THINC", "VNC"} {
		name := name
		b.Run(name, func(b *testing.B) {
			var r bench.MicroResult
			for i := 0; i < b.N; i++ {
				r = bench.RunScrollDrag(bench.SystemByName(name))
			}
			b.ReportMetric(float64(r.ScrollBytes), "scroll-B/step")
			b.ReportMetric(float64(r.DragBytes), "drag-B/step")
		})
	}
}
